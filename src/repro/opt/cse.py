"""Common-subexpression elimination by local value numbering.

Two tuples compute the same value when they apply the same operation to
operands with the same value numbers — with commutative operands
canonicalized (``Add``/``Mul``), constants keyed by their literal value,
and ``Load`` keyed by the variable *and its store epoch* (the count of
stores to that variable seen so far), so loads separated by a store are
never merged.

``Store`` tuples are never merged; ``Div`` participates normally (merging
two identical divisions cannot lose a fault — both faulted or neither).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.block import BasicBlock, BlockBuilder
from ..ir.ops import Opcode
from ..ir.tuples import ConstOperand, RefOperand, VarOperand


def eliminate_common_subexpressions(block: BasicBlock) -> BasicBlock:
    """Apply local value numbering once; returns a renumbered block."""
    builder = BlockBuilder(block.name)
    sub: Dict[int, int] = {}  # old ref -> new ref
    available: Dict[Tuple, int] = {}  # value key -> new ref
    store_epoch: Dict[str, int] = {}

    for t in block:
        op = t.op
        if op is Opcode.CONST:
            assert isinstance(t.alpha, ConstOperand)
            key = ("const", t.alpha.value)
            if key in available:
                sub[t.ident] = available[key]
            else:
                ref = builder.emit_const(t.alpha.value)
                available[key] = ref
                sub[t.ident] = ref
        elif op is Opcode.LOAD:
            assert isinstance(t.alpha, VarOperand)
            var = t.alpha.name
            key = ("load", var, store_epoch.get(var, 0))
            if key in available:
                sub[t.ident] = available[key]
            else:
                ref = builder.emit_load(var)
                available[key] = ref
                sub[t.ident] = ref
        elif op is Opcode.STORE:
            assert isinstance(t.alpha, VarOperand) and isinstance(
                t.beta, RefOperand
            )
            var = t.alpha.name
            builder.emit_store(var, sub[t.beta.ref])
            store_epoch[var] = store_epoch.get(var, 0) + 1
        elif op in (Opcode.COPY, Opcode.NEG):
            assert isinstance(t.alpha, RefOperand)
            operand = sub[t.alpha.ref]
            key = (op.value, operand)
            if key in available:
                sub[t.ident] = available[key]
            else:
                ref = builder.emit_unary(op, operand)
                available[key] = ref
                sub[t.ident] = ref
        else:  # binary arithmetic
            assert isinstance(t.alpha, RefOperand) and isinstance(
                t.beta, RefOperand
            )
            a = sub[t.alpha.ref]
            b = sub[t.beta.ref]
            if op.is_commutative and b < a:
                a, b = b, a
            key = (op.value, a, b)
            if key in available:
                sub[t.ident] = available[key]
            else:
                ref = builder.emit_binary(op, a, b)
                available[key] = ref
                sub[t.ident] = ref

    return builder.build()
