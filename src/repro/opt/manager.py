"""Optimization pass manager.

Runs a pass pipeline to a fixpoint: the paper's front end performs
"constant folding with value propagation, common subexpression
elimination, dead code elimination, and various peephole optimizations"
(section 3.1), and these passes enable one another (peephole produces
copies that folding erases; folding orphans tuples that DCE collects), so
one round is rarely enough.

Convergence is guaranteed: every pass either strictly shrinks the block
or leaves a canonical form it maps to itself; the iteration cap is a
safety net that raises rather than looping silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..ir.block import BasicBlock
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .fold import fold_constants
from .peephole import peephole_optimize

Pass = Callable[[BasicBlock], BasicBlock]


@dataclass(frozen=True)
class OptimizationReport:
    """What the pipeline did to one block."""

    block: BasicBlock
    original_size: int
    final_size: int
    rounds: int
    pass_names: Tuple[str, ...]

    @property
    def tuples_removed(self) -> int:
        return self.original_size - self.final_size


def default_passes(
    strength_reduce: bool = True, remove_dead_stores: bool = True
) -> List[Tuple[str, Pass]]:
    """The section-3.1 pipeline in its canonical order."""
    return [
        ("fold", fold_constants),
        ("peephole", lambda b: peephole_optimize(b, strength_reduce)),
        ("cse", eliminate_common_subexpressions),
        ("dce", lambda b: eliminate_dead_code(b, remove_dead_stores)),
    ]


def optimize(
    block: BasicBlock,
    passes: Sequence[Tuple[str, Pass]] = None,
    max_rounds: int = 25,
) -> OptimizationReport:
    """Run the pass pipeline to a fixpoint and report.

    A "round" is one application of every pass in order; the fixpoint is
    reached when a full round leaves the block structurally unchanged.
    """
    if passes is None:
        passes = default_passes()
    original_size = len(block)
    rounds = 0
    while True:
        if rounds >= max_rounds:
            raise RuntimeError(
                f"optimizer did not converge within {max_rounds} rounds "
                f"on block {block.name!r}"
            )
        before = block.tuples
        for _, fn in passes:
            block = fn(block)
        rounds += 1
        if block.tuples == before:
            break
    return OptimizationReport(
        block=block,
        original_size=original_size,
        final_size=len(block),
        rounds=rounds,
        pass_names=tuple(name for name, _ in passes),
    )


def optimize_block(block: BasicBlock, **kwargs) -> BasicBlock:
    """Convenience: optimize and return just the block."""
    return optimize(block, **kwargs).block
