"""Peephole / algebraic simplifications (section 3.1's "various peephole
optimizations").

Applied patterns (all exact under the interpreter's arithmetic):

================  ============================
``x + 0``, ``0 + x``   -> ``x``
``x - 0``              -> ``x``
``x - x``              -> ``Const 0``
``x * 1``, ``1 * x``   -> ``x``
``x / 1``              -> ``x``
``x * 0``, ``0 * x``   -> ``Const 0``
``x * 2``, ``2 * x``   -> ``x + x``  (strength reduction, optional)
``Neg(Const c)``       -> ``Const -c``
================  ============================

``x / x`` is *not* rewritten to 1 (x may be zero) and nothing touching a
``Div`` divisor is simplified away.  Simplified tuples become ``Copy`` or
``Const`` tuples; a following constant-folding pass erases the copies and
DCE collects the orphans, so this pass is designed to run inside the
fixpoint pass manager rather than alone.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.block import BasicBlock, BlockBuilder
from ..ir.ops import Opcode
from ..ir.tuples import ConstOperand, RefOperand, VarOperand


def peephole_optimize(
    block: BasicBlock, strength_reduce: bool = True
) -> BasicBlock:
    """Apply the algebraic rewrites once; returns a renumbered block."""
    builder = BlockBuilder(block.name)
    sub: Dict[int, int] = {}
    const_of: Dict[int, int] = {}  # new ref -> constant value (if Const)

    def emit_const(value: int) -> int:
        ref = builder.emit_const(value)
        const_of[ref] = value
        return ref

    def const_val(ref: int) -> Optional[int]:
        return const_of.get(ref)

    for t in block:
        op = t.op
        if op is Opcode.CONST:
            assert isinstance(t.alpha, ConstOperand)
            sub[t.ident] = emit_const(t.alpha.value)
        elif op is Opcode.LOAD:
            assert isinstance(t.alpha, VarOperand)
            sub[t.ident] = builder.emit_load(t.alpha.name)
        elif op is Opcode.STORE:
            assert isinstance(t.beta, RefOperand)
            builder.emit_store(t.variable, sub[t.beta.ref])
        elif op is Opcode.COPY:
            assert isinstance(t.alpha, RefOperand)
            sub[t.ident] = sub[t.alpha.ref]
        elif op is Opcode.NEG:
            assert isinstance(t.alpha, RefOperand)
            source = sub[t.alpha.ref]
            value = const_val(source)
            if value is not None:
                sub[t.ident] = emit_const(-value)
            else:
                sub[t.ident] = builder.emit_unary(Opcode.NEG, source)
        else:
            assert isinstance(t.alpha, RefOperand) and isinstance(
                t.beta, RefOperand
            )
            a = sub[t.alpha.ref]
            b = sub[t.beta.ref]
            ca, cb = const_val(a), const_val(b)
            replacement: Optional[int] = None
            if op is Opcode.ADD:
                if ca == 0:
                    replacement = b
                elif cb == 0:
                    replacement = a
            elif op is Opcode.SUB:
                if cb == 0:
                    replacement = a
                elif a == b:
                    replacement = emit_const(0)
            elif op is Opcode.MUL:
                if ca == 1:
                    replacement = b
                elif cb == 1:
                    replacement = a
                elif ca == 0 or cb == 0:
                    replacement = emit_const(0)
                elif strength_reduce and ca == 2:
                    replacement = builder.emit_binary(Opcode.ADD, b, b)
                elif strength_reduce and cb == 2:
                    replacement = builder.emit_binary(Opcode.ADD, a, a)
            elif op is Opcode.DIV:
                if cb == 1:
                    replacement = a
            if replacement is None:
                replacement = builder.emit_binary(op, a, b)
            sub[t.ident] = replacement

    return builder.build()
