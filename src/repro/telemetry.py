"""Search telemetry — cheap counters and phase timers for the schedulers.

Combinatorial schedulers live and die by visibility into their pruning
behaviour: the surveys on combinatorial instruction scheduling stress
measuring propagation/pruning effectiveness, and the SMT/ASP lines of
work report solver statistics as first-class output.  This module is the
repository's equivalent: a tiny registry of integer counters and float
timers that the branch-and-bound searches (``sched.search``,
``sched.multi``, ``sched.splitting``) fill in as they prune, that the
population runners aggregate across blocks *and* across worker
processes, and that the CLIs serialize with ``--stats-json``.

Prune-event taxonomy (one counter per kind, ``prune.<kind>``):

``legality``
    Candidates excluded because ``rho(xi) ⊄ Φ`` — the exact ready-set
    realization of the paper's steps [5a]/[5b] quick earliest/latest
    window check plus the real legality test.
``bounds``
    Nodes abandoned by the admissible earliest/latest lower bounds
    (latency-weighted critical path / per-pipeline enqueue capacity),
    including incumbents proven optimal at the root.
``equivalence``
    Candidates filtered by the sound step-[5c] interchangeability
    refinement.
``alpha_beta``
    Step [6] branch-and-bound cutoffs (``mu(Φ) >= mu(pi)``).
``curtail``
    Searches truncated by the curtail point λ (Ω-call budget).
``timeout``
    Searches truncated by a wall-clock deadline.
``dominance``
    Nodes pruned by the dominance memo (an expanded twin prefix was at
    least as cheap).

Searches additionally report ``search.memo_evicted`` — dominance-memo
entries dropped (FIFO) to honor ``max_memo_entries``; a non-zero count
means the memo hit its cap and degraded gracefully instead of growing
without bound.

Verification taxonomy (``verify.<kind>``, filled in by the independent
checker in ``repro.verify`` — the oracle, the fuzzer and the
``verify=True`` population hook):

``verify.blocks``
    Block/machine pairs put through the differential oracle.
``verify.schedules_checked``
    Schedules re-derived through the certificate checker.
``verify.certificate_failures``
    Schedules the certificate rejected (illegal order, wrong pipeline,
    under- or over-padded stream, or a NOP count that does not re-derive).
``verify.invariant_failures``
    Cross-scheduler invariants violated (e.g. search worse than its list
    seed, exhaustive optimum below a "proven" optimum).
``verify.sim_skipped``
    Simulator cross-checks skipped because block *semantics* (not
    timing) failed under the synthetic memory, e.g. division by zero.
``verify.blocks_failed``
    Block/machine pairs with at least one discrepancy.
``verify.optimality.runs``
    Blocks put through the cross-solver ILP witness (``repro.ilp``,
    oracle ``optimality=True``).
``verify.optimality.proved``
    Witness runs whose branch and bound completed — the search
    incumbent (or a better schedule) was proven optimal.
``verify.optimality.gaps``
    Witness runs curtailed by a node/pivot/time budget, leaving a
    certified optimality gap (incumbent minus dual lower bound).
``verify.optimality.improved``
    Witness runs that beat the search incumbent outright.

Resilience taxonomy (``resilience.<kind>``, filled in by the budget
ladder in ``repro.experiments.runner`` and the supervised parallel
engine — see ``repro.resilience``):

``resilience.ladder.<step>``
    Blocks published by each rung of the degradation ladder
    (``optimal-search``, ``curtailed-search``, ``split-windows``,
    ``list-seed``).
``resilience.run_budget_exhausted``
    Blocks that skipped the search because the run-level wall-clock or
    Ω budget was already spent.
``resilience.journal_blocks_skipped``
    Blocks recovered from a checkpoint journal on ``--resume`` instead
    of being re-scheduled.
``resilience.crashes_detected`` / ``resilience.hangs_detected``
    Worker processes the supervisor found dead / heartbeat-stale.
``resilience.corrupted_records``
    Worker result payloads rejected by record validation.
``resilience.chunk_retries``
    Chunk attempts requeued after a worker failure.
``resilience.poison_chunks`` / ``resilience.poison_blocks``
    Chunks quarantined after exhausting their retries, and the blocks
    they degraded to list seeds.

Service taxonomy (``service.<kind>``, filled in by the result cache and
the batch daemon — see ``repro.service``):

``service.cache.hits``
    Lookups served from the canonical-form result cache (each also
    replays ``record_search`` so the search aggregates above stay
    consistent with a cold run).
``service.cache.misses``
    Lookups that ran the real search (and, when cache-safe, stored it).
``service.cache.bypass``
    Lookups skipped on purpose: a wall-clock ``time_limit`` was set (the
    outcome is not a function of the problem alone), or the daemon ran
    without a cache.
``service.requests`` / ``service.blocks``
    Batches answered by the daemon, and blocks across them.
``service.cache.quarantined``
    Corrupt disk entries (torn JSON, unreadable, key mismatch) moved to
    ``<store>/quarantine/`` with a reason sidecar instead of silently
    degrading to misses forever.
``service.shed_requests``
    Batches shed by admission control (429 + ``Retry-After``) — the
    in-flight cap or the worker-pool queue was full.
    (Blocks shed by an exhausted request ``deadline`` reuse
    ``resilience.run_budget_exhausted`` — the deadline *is* a request-
    scoped run budget.)
``service.pool.crashes`` / ``service.pool.hangs``
    Worker processes the pool dispatcher found dead / past a job's hang
    deadline (killed and respawned).
``service.pool.corrupt_replies`` / ``service.pool.worker_errors``
    Worker replies rejected by structural validation, and clean
    in-worker error replies (both recycle the worker and retry).
``service.pool.retries`` / ``service.pool.degraded``
    Job attempts requeued after a worker failure, and jobs degraded to
    the list-schedule seed after exhausting their retries.
``service.http.bad_bodies`` / ``service.http.disconnects``
    Request bodies rejected before parsing (missing/invalid
    ``Content-Length``, oversized, truncated mid-body) and replies that
    failed because the client hung up.
``service.client.retries``
    Client-side request attempts retried with jittered backoff after a
    retryable answer (429, 5xx, transport error).

The registry is deliberately dumb: the searches accumulate plain local
integers in their hot loops and flush them here once per block, so the
per-node overhead of telemetry is a handful of integer adds whether or
not a registry is attached.

Serialized schema (stable; ``--stats-json``)::

    {
      "schema": "repro-telemetry/1",
      "counters": {"prune.alpha_beta": 123, ...},
      "timers": {"phase.schedule": 1.25, ...},
      "meta": {...}                       # free-form run context
    }
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional, Union

#: Version tag of the serialized payload.
SCHEMA = "repro-telemetry/1"

#: Every prune-event kind the searches report.  ``as_dict`` payloads that
#: went through :meth:`Telemetry.record_search` always carry all of them
#: (zero-filled), so downstream tooling can rely on the keys existing.
PRUNE_KINDS = (
    "legality",
    "bounds",
    "equivalence",
    "alpha_beta",
    "curtail",
    "timeout",
    "dominance",
)


def prune_counts(**kinds: int) -> Dict[str, int]:
    """A fully-populated prune-count mapping (unknown kinds rejected)."""
    unknown = set(kinds) - set(PRUNE_KINDS)
    if unknown:
        raise ValueError(f"unknown prune kinds: {sorted(unknown)}")
    return {kind: int(kinds.get(kind, 0)) for kind in PRUNE_KINDS}


class Telemetry:
    """A mergeable registry of counters and wall-clock timers."""

    __slots__ = ("counters", "timers")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}

    # -- accumulation --------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase (additive across entries)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(f"phase.{name}", time.perf_counter() - start)

    def record_search(self, result: Any) -> None:
        """Fold one search outcome into the registry.

        Accepts any of the scheduler results (``SearchResult``,
        ``MultiScheduleResult``, ``SplitScheduleResult``) — anything with
        ``omega_calls``/``elapsed_seconds`` and an optional
        ``prune_counts`` mapping.
        """
        self.count("search.runs")
        self.count("search.omega_calls", getattr(result, "omega_calls", 0))
        completed = getattr(result, "completed", None)
        if completed is None:
            completed = getattr(result, "all_windows_completed", False)
        if completed:
            self.count("search.completed")
        if getattr(result, "timed_out", False):
            self.count("search.timed_out")
        # Dominance-memo evictions (zero-filled so the key always exists).
        self.count("search.memo_evicted", getattr(result, "memo_evicted", 0))
        for kind in PRUNE_KINDS:
            self.counters.setdefault(f"prune.{kind}", 0)
        for kind, n in (getattr(result, "prune_counts", None) or {}).items():
            self.count(f"prune.{kind}", n)
        self.add_time("time.search", getattr(result, "elapsed_seconds", 0.0))

    # -- aggregation ---------------------------------------------------
    def merge(self, other: Union["Telemetry", Mapping[str, Any]]) -> None:
        """Add another registry (or its ``as_dict`` payload) into this one.

        This is how per-worker statistics from the parallel population
        engine are combined: counters and timers are both additive.
        """
        if isinstance(other, Telemetry):
            counters: Mapping[str, int] = other.counters
            timers: Mapping[str, float] = other.timers
        else:
            counters = other.get("counters", {})
            timers = other.get("timers", {})
        for name, n in counters.items():
            self.count(name, n)
        for name, seconds in timers.items():
            self.add_time(name, seconds)

    # -- serialization -------------------------------------------------
    def as_dict(self, meta: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": SCHEMA,
            "counters": dict(sorted(self.counters.items())),
            "timers": dict(sorted(self.timers.items())),
        }
        if meta is not None:
            payload["meta"] = dict(meta)
        return payload

    def dumps(self, meta: Optional[Mapping[str, Any]] = None) -> str:
        return json.dumps(self.as_dict(meta), indent=2, sort_keys=False)

    def write_json(
        self, path: str, meta: Optional[Mapping[str, Any]] = None
    ) -> None:
        """Write the payload atomically (readers never see a torn file)."""
        from .ioutil import atomic_write_text

        atomic_write_text(path, self.dumps(meta) + "\n")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Telemetry":
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"unsupported telemetry schema {schema!r} (want {SCHEMA!r})"
            )
        tele = cls()
        tele.merge(payload)
        return tele

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Telemetry({len(self.counters)} counters, "
            f"{len(self.timers)} timers)"
        )
