"""Pipeline-occupancy timelines — a cycle-by-cycle view of a schedule.

Renders the machine's pipelines against the clock for one scheduled
block: which instruction issues each cycle, which pipelines are accepting
work, holding results in flight, or refusing enqueues.  The pictures make
the latency/enqueue distinction of section 2.1 tangible and are used by
the examples and the ``repro-compile --show timeline`` output.

Legend per pipeline column::

    #   the cycle an operation enqueues into this pipeline
    =   pipeline cannot accept another enqueue (enqueue-time window)
    -   result still in flight (latency window, enqueues allowed)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.block import BasicBlock
from ..ir.dag import DependenceDAG
from ..ir.textual import format_tuple
from ..machine.machine import MachineDescription
from ..sched.nop_insertion import (
    InitialConditions,
    PipelineAssignment,
    ScheduleTiming,
    SigmaResolver,
)


def render_timeline(
    block: BasicBlock,
    machine: MachineDescription,
    timing: ScheduleTiming,
    assignment: Optional[PipelineAssignment] = None,
    initial: Optional[InitialConditions] = None,
    dag: Optional[DependenceDAG] = None,
) -> str:
    """An ASCII Gantt chart of one schedule."""
    if dag is None:
        dag = DependenceDAG(block)
    resolver = SigmaResolver(dag, machine, assignment)
    span = timing.issue_times[-1] + 1 if timing.order else 0
    drain = 0
    for pos, ident in enumerate(timing.order):
        drain = max(drain, timing.issue_times[pos] + resolver.latency(ident))
    total = max(span, drain)

    pipes = list(machine.pipelines)
    issue_at: Dict[int, int] = {
        t: ident for ident, t in zip(timing.order, timing.issue_times)
    }

    # Per-pipeline per-cycle state.
    marks: Dict[int, List[str]] = {p.ident: [" "] * total for p in pipes}
    if initial is not None:
        for pid, free_at in initial.pipe_free.items():
            if pid in marks:
                for cycle in range(min(free_at, total)):
                    marks[pid][cycle] = "="
    for pos, ident in enumerate(timing.order):
        pid = resolver.sigma(ident)
        if pid is None:
            continue
        issued = timing.issue_times[pos]
        latency = resolver.latency(ident)
        enqueue = resolver.enqueue_time(ident)
        for cycle in range(issued, min(issued + latency, total)):
            if marks[pid][cycle] == " ":
                marks[pid][cycle] = "-"
        for cycle in range(issued, min(issued + enqueue, total)):
            marks[pid][cycle] = "="
        marks[pid][issued] = "#"

    label_width = max(
        (len(format_tuple(block.by_ident(i))) for i in timing.order),
        default=0,
    )
    header = f"{'cycle':>5}  {'issued':<{label_width}}"
    for p in pipes:
        header += f"  {p.function[:10]:^10}"
    lines = [header, "-" * len(header)]
    for cycle in range(total):
        ident = issue_at.get(cycle)
        label = format_tuple(block.by_ident(ident)) if ident is not None else (
            "(nop)" if cycle < span else "(drain)"
        )
        row = f"{cycle:>5}  {label:<{label_width}}"
        for p in pipes:
            row += f"  {marks[p.ident][cycle]:^10}"
        lines.append(row.rstrip())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Stall explanation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StallExplanation:
    """Why one instruction's eta is what it is."""

    ident: int
    position: int
    eta: int
    cause: str  # "none" | "dependence" | "conflict" | "carry-in"
    detail: str

    def __str__(self) -> str:
        if self.eta == 0:
            return f"instruction {self.ident}: no stall"
        return (
            f"instruction {self.ident}: {self.eta} NOP(s) — "
            f"{self.cause}: {self.detail}"
        )


def explain_schedule(
    block: BasicBlock,
    machine: MachineDescription,
    timing: ScheduleTiming,
    assignment: Optional[PipelineAssignment] = None,
    initial: Optional[InitialConditions] = None,
    dag: Optional[DependenceDAG] = None,
) -> List[StallExplanation]:
    """Attribute every NOP to its binding constraint.

    For each instruction, recomputes the dependence, conflict, and
    carry-in bounds on its issue time and names the one that actually
    forced the delay (the section 2.1 taxonomy, mechanized).
    """
    if dag is None:
        dag = DependenceDAG(block)
    resolver = SigmaResolver(dag, machine, assignment)
    init = initial if initial is not None else InitialConditions()
    out: List[StallExplanation] = []
    issue_of = {
        ident: t for ident, t in zip(timing.order, timing.issue_times)
    }
    last_pipe_issue: Dict[int, int] = {}

    for pos, ident in enumerate(timing.order):
        eta = timing.etas[pos]
        issued = timing.issue_times[pos]
        base = timing.issue_times[pos - 1] + 1 if pos else 0
        cause, detail = "none", ""
        if eta > 0:
            best_bound = base
            pid = resolver.sigma(ident)
            if pid is not None:
                last = last_pipe_issue.get(pid)
                if last is not None:
                    bound = last + resolver.enqueue_time(ident)
                    if bound > best_bound:
                        best_bound = bound
                        cause = "conflict"
                        detail = (
                            f"pipeline {pid} busy until cycle {bound} "
                            f"(enqueue time "
                            f"{resolver.enqueue_time(ident)})"
                        )
                elif pid in init.pipe_free and init.pipe_free[pid] > best_bound:
                    best_bound = init.pipe_free[pid]
                    cause = "carry-in"
                    detail = f"pipeline {pid} carried busy until cycle {best_bound}"
            t = block.by_ident(ident)
            if t.variable is not None and t.variable in init.variable_ready:
                bound = init.variable_ready[t.variable]
                if bound > best_bound:
                    best_bound = bound
                    cause = "carry-in"
                    detail = (
                        f"variable {t.variable!r} not ready before cycle {bound}"
                    )
            for delta in dag.rho(ident):
                bound = issue_of[delta] + resolver.latency(delta)
                if bound > best_bound:
                    best_bound = bound
                    cause = "dependence"
                    detail = (
                        f"waits for tuple {delta} "
                        f"(latency {resolver.latency(delta)}, "
                        f"issued cycle {issue_of[delta]})"
                    )
        pid = resolver.sigma(ident)
        if pid is not None:
            last_pipe_issue[pid] = issued
        out.append(StallExplanation(ident, pos, eta, cause, detail))
    return out


def stall_breakdown(explanations: List[StallExplanation]) -> Dict[str, int]:
    """Total NOPs per cause — the dependence/conflict split of §2.1."""
    out: Dict[str, int] = {}
    for e in explanations:
        if e.eta:
            out[e.cause] = out.get(e.cause, 0) + e.eta
    return out


def pipeline_utilization(
    block: BasicBlock,
    machine: MachineDescription,
    timing: ScheduleTiming,
    assignment: Optional[PipelineAssignment] = None,
    dag: Optional[DependenceDAG] = None,
) -> Dict[int, float]:
    """Fraction of the issue span each pipeline spends enqueue-busy."""
    if dag is None:
        dag = DependenceDAG(block)
    resolver = SigmaResolver(dag, machine, assignment)
    span = timing.issue_span_cycles or 1
    busy: Dict[int, int] = {p.ident: 0 for p in machine.pipelines}
    for pos, ident in enumerate(timing.order):
        pid = resolver.sigma(ident)
        if pid is not None:
            busy[pid] += resolver.enqueue_time(ident)
    return {pid: min(1.0, cycles / span) for pid, cycles in busy.items()}
