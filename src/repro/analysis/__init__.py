"""Schedule analysis: pipeline timelines, stall attribution, utilization."""

from .timeline import (
    StallExplanation,
    explain_schedule,
    pipeline_utilization,
    render_timeline,
    stall_breakdown,
)

__all__ = [
    "StallExplanation",
    "explain_schedule",
    "pipeline_utilization",
    "render_timeline",
    "stall_breakdown",
]
