"""Linear notation for tuple code — parser and printer.

Figure 3 of the paper shows the notation::

    1: Const 15
    2: Store #b, 1
    3: Load #a
    4: Mul 1, 3
    5: Store #a, 4

This module round-trips that notation: :func:`format_block` emits it and
:func:`parse_block` reads it back (accepting ``;``-introduced comments, as
in the paper's assembly fragments, and blank lines).  Constants may be
written bare (``15``) or quoted (``"15"``) — the paper's running text uses
both spellings.
"""

from __future__ import annotations

import re
from typing import List, Optional

from .block import BasicBlock
from .ops import Opcode, parse_opcode
from .tuples import ConstOperand, IRTuple, Operand, RefOperand, VarOperand


class TupleSyntaxError(ValueError):
    """Raised on malformed linear-notation input."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


_LINE_RE = re.compile(
    r"""^\s*
        (?P<ident>\d+)\s*:\s*
        (?P<op>[A-Za-z]+)
        (?:\s+(?P<operands>.*?))?\s*$""",
    re.VERBOSE,
)


def parse_block(text: str, name: str = "block") -> BasicBlock:
    """Parse linear tuple notation into a validated :class:`BasicBlock`."""
    tuples: List[IRTuple] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        m = _LINE_RE.match(line)
        if m is None:
            raise TupleSyntaxError(f"cannot parse tuple line: {raw!r}", line_no)
        ident = int(m.group("ident"))
        try:
            op = parse_opcode(m.group("op"))
        except ValueError as exc:
            raise TupleSyntaxError(str(exc), line_no) from None
        operand_text = m.group("operands") or ""
        operands = _parse_operands(operand_text, line_no, bare_number_is_const=op is Opcode.CONST)
        alpha = operands[0] if len(operands) > 0 else None
        beta = operands[1] if len(operands) > 1 else None
        if len(operands) > 2:
            raise TupleSyntaxError("tuples carry at most two operands", line_no)
        try:
            tuples.append(IRTuple(ident, op, alpha, beta))
        except ValueError as exc:
            raise TupleSyntaxError(str(exc), line_no) from None
    return BasicBlock(tuples, name)


def _parse_operands(
    text: str, line_no: int, bare_number_is_const: bool
) -> List[Operand]:
    """Split a comma-separated operand list.

    A bare number is a tuple *reference* except in ``Const`` tuples, where
    it is the literal itself (the paper writes both ``Const 15`` and
    ``Const "15"``).  Quoted numbers are always literals.
    """
    text = text.strip()
    if not text:
        return []
    out: List[Operand] = []
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            raise TupleSyntaxError("empty operand", line_no)
        if piece.startswith("#"):
            out.append(VarOperand(piece[1:]))
        elif piece.startswith('"') and piece.endswith('"') and len(piece) >= 2:
            out.append(ConstOperand(_parse_int(piece[1:-1], line_no)))
        elif piece.lstrip("-").isdigit():
            if bare_number_is_const:
                out.append(ConstOperand(int(piece)))
            else:
                out.append(RefOperand(_parse_int(piece, line_no)))
        else:
            raise TupleSyntaxError(f"cannot parse operand {piece!r}", line_no)
    return out


def _parse_int(text: str, line_no: int) -> int:
    try:
        return int(text)
    except ValueError:
        raise TupleSyntaxError(f"bad constant literal {text!r}", line_no) from None


def format_tuple(t: IRTuple) -> str:
    """Render one tuple in the paper's linear notation."""
    parts = []
    for operand in t.operands:
        if isinstance(operand, RefOperand):
            parts.append(str(operand.ref))
        elif isinstance(operand, VarOperand):
            parts.append(f"#{operand.name}")
        else:
            parts.append(f'"{operand.value}"')
    body = ", ".join(parts)
    return f"{t.ident}: {t.op.value} {body}".rstrip()


def format_block(block: BasicBlock) -> str:
    """Render a block in the paper's linear notation, one tuple per line."""
    return "\n".join(format_tuple(t) for t in block)
