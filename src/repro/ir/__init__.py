"""Tuple intermediate form: instructions, blocks, dependence DAG,
reference interpreter, and the paper's linear notation."""

from .block import BasicBlock, BlockBuilder, BlockValidationError
from .dag import COUNT_CAPPED, DependenceDAG, DependenceEdge
from .interp import (
    ExecutionResult,
    UndefinedVariableError,
    blocks_equivalent,
    run_block,
)
from .loop import (
    LoopBlock,
    LoopCarriedDep,
    concatenate_iterations,
    derive_carried_dependences,
    run_loop,
)
from .ops import BINARY_ARITHMETIC, VALUE_PRODUCING_OPCODES, Opcode, parse_opcode
from .textual import TupleSyntaxError, format_block, format_tuple, parse_block
from .tuples import (
    ConstOperand,
    IRTuple,
    Operand,
    RefOperand,
    VarOperand,
    add,
    const,
    copy,
    div,
    load,
    mul,
    neg,
    store,
    sub,
)

__all__ = [
    "Opcode",
    "parse_opcode",
    "BINARY_ARITHMETIC",
    "VALUE_PRODUCING_OPCODES",
    "ConstOperand",
    "IRTuple",
    "Operand",
    "RefOperand",
    "VarOperand",
    "add",
    "const",
    "copy",
    "div",
    "load",
    "mul",
    "neg",
    "store",
    "sub",
    "BasicBlock",
    "BlockBuilder",
    "BlockValidationError",
    "COUNT_CAPPED",
    "DependenceDAG",
    "DependenceEdge",
    "ExecutionResult",
    "UndefinedVariableError",
    "blocks_equivalent",
    "run_block",
    "LoopBlock",
    "LoopCarriedDep",
    "concatenate_iterations",
    "derive_carried_dependences",
    "run_loop",
    "TupleSyntaxError",
    "format_block",
    "format_tuple",
    "parse_block",
]
