"""Loop-level IR: a loop body block plus cross-iteration dependences.

The frontend lowers ``for i in 0..N { ... }`` to a :class:`LoopBlock`:
one :class:`~repro.ir.block.BasicBlock` for the body (one iteration's
tuple code) plus the loop-carried dependences between consecutive
iterations.  The modulo scheduler (``repro.sched.pipelining``) consumes
exactly this pair — the body DAG gives the intra-iteration constraints,
the carried edges the recurrence constraints.

Carried dependences are *derived*, not declared: the body is unrolled
twice (:func:`concatenate_iterations`), the ordinary dependence DAG is
built over the concatenation, and every edge crossing the copy boundary
is a carried dependence.  In this scalar-variable language the "most
recent store" linking never skips a whole iteration — every memory
dependence of iteration ``i+1`` resolves to iteration ``i+1`` or ``i`` —
so all carried dependences have distance 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from .block import BasicBlock
from .dag import DependenceDAG
from .interp import run_block
from .tuples import IRTuple, RefOperand

#: A loop bound: an integer literal or the name of a variable holding one.
Bound = Union[int, str]


@dataclass(frozen=True, slots=True)
class LoopCarriedDep:
    """A dependence of ``consumer`` (iteration ``i + distance``) on
    ``producer`` (iteration ``i``), both body tuple reference numbers."""

    producer: int
    consumer: int
    kind: str  # "flow" | "anti" | "output"
    distance: int = 1

    def __post_init__(self) -> None:
        if self.distance < 1:
            raise ValueError("carried dependences need distance >= 1")

    def __str__(self) -> str:
        return (
            f"{self.producer} -{self.kind}[{self.distance}]-> {self.consumer}"
        )


def _ident_stride(body: BasicBlock) -> int:
    return max(body.idents) if len(body) else 0


def _shift_tuple(t: IRTuple, offset: int) -> IRTuple:
    alpha = t.alpha
    beta = t.beta
    if isinstance(alpha, RefOperand):
        alpha = RefOperand(alpha.ref + offset)
    if isinstance(beta, RefOperand):
        beta = RefOperand(beta.ref + offset)
    return IRTuple(t.ident + offset, t.op, alpha, beta)


def concatenate_iterations(
    body: BasicBlock, copies: int, name: Optional[str] = None
) -> BasicBlock:
    """A straight-line block holding ``copies`` renumbered body copies.

    Copy ``j`` shifts every reference number by ``j * max(body.idents)``
    so the copies are disjoint; memory variables are shared, which is
    precisely what induces the carried dependences between copies.
    """
    if copies < 1:
        raise ValueError("need at least one copy")
    stride = _ident_stride(body)
    tuples = []
    for j in range(copies):
        offset = j * stride
        for t in body:
            tuples.append(_shift_tuple(t, offset))
    return BasicBlock(tuples, name or f"{body.name}@x{copies}")


def derive_carried_dependences(body: BasicBlock) -> Tuple[LoopCarriedDep, ...]:
    """Derive the loop-carried dependences of ``body`` (all distance 1)."""
    if len(body) < 1:
        return ()
    stride = _ident_stride(body)
    pair = concatenate_iterations(body, 2)
    carried = []
    for edge in DependenceDAG(pair).edges:
        if edge.producer <= stride < edge.consumer:
            carried.append(
                LoopCarriedDep(
                    edge.producer, edge.consumer - stride, edge.kind, 1
                )
            )
    return tuple(carried)


@dataclass(frozen=True)
class LoopBlock:
    """One bounded loop, lowered: body tuples + carried dependences.

    ``loop_var`` is ``None`` when the body never reads the counter (the
    induction update is then dead code and is not materialized); when
    present, the body ends with the lowered ``var = var + 1`` update and
    executing the loop requires ``var`` to be seeded with ``start``.
    """

    body: BasicBlock
    carried: Tuple[LoopCarriedDep, ...]
    loop_var: Optional[str] = None
    start: Bound = 0
    stop: Bound = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "carried", tuple(self.carried))
        idents = set(self.body.idents)
        for dep in self.carried:
            if dep.producer not in idents or dep.consumer not in idents:
                raise ValueError(
                    f"carried dependence {dep} references tuples outside "
                    "the body"
                )

    def __len__(self) -> int:
        return len(self.body)

    @property
    def name(self) -> str:
        return self.body.name

    def trip_count(self, env: Optional[Mapping[str, object]] = None) -> int:
        """Resolve ``max(0, stop - start)`` against ``env``."""
        return max(0, _bound(self.stop, env) - _bound(self.start, env))

    def unrolled(self, copies: int) -> BasicBlock:
        """``copies`` concatenated, renumbered body iterations."""
        return concatenate_iterations(self.body, copies)

    def __str__(self) -> str:
        header = f"loop {self.name}: {self.start}..{self.stop}"
        if self.loop_var is not None:
            header += f" var {self.loop_var}"
        lines = [header]
        lines += [f"    {t}" for t in self.body]
        lines += [f"    carried {dep}" for dep in self.carried]
        return "\n".join(lines)


def _bound(bound: Bound, env: Optional[Mapping[str, object]]) -> int:
    if isinstance(bound, str):
        if env is None or bound not in env:
            raise KeyError(f"loop bound variable {bound!r} is undefined")
        value = env[bound]
    else:
        value = bound
    out = int(value)
    if out != value:
        raise ValueError(f"loop bound {value!r} is not an integer")
    return out


def run_loop(
    loop: LoopBlock,
    memory: Optional[Mapping[str, object]] = None,
    trip_count: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Execute the lowered loop; returns the final memory.

    Runs the body block ``trip_count`` times (default: resolved from the
    bounds), threading memory between iterations.  The loop variable is
    seeded with ``start`` and, matching source semantics, restored (or
    removed) after the loop — it is a scoped binding.  ``order`` replays
    each iteration in a specific legal order (defaults to program order).
    """
    env: Dict[str, object] = dict(memory or {})
    trips = loop.trip_count(env) if trip_count is None else trip_count
    shadowed = loop.loop_var is not None and loop.loop_var in env
    saved = env.get(loop.loop_var) if shadowed else None
    if loop.loop_var is not None:
        env[loop.loop_var] = _bound(loop.start, env)
    for _ in range(trips):
        env = dict(run_block(loop.body, env, order=order).memory)
    if loop.loop_var is not None:
        if shadowed:
            env[loop.loop_var] = saved
        else:
            env.pop(loop.loop_var, None)
    return env
