"""Basic blocks of tuple code.

A :class:`BasicBlock` is an ordered sequence of :class:`~repro.ir.tuples.IRTuple`
instructions with single-entry/single-exit semantics.  The order of the
tuples in the block is the *program order* produced by the front end;
schedulers permute this order subject to the dependence DAG.

Blocks validate their internal references eagerly: every ``RefOperand``
must point at an *earlier* tuple in program order (the linear notation
embeds a DAG, section 3.1), reference numbers must be unique, and Store
targets must name variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence

from .ops import Opcode
from .tuples import IRTuple, RefOperand, VarOperand


class BlockValidationError(ValueError):
    """Raised when a basic block's tuples are not internally consistent."""


@dataclass(frozen=True)
class BasicBlock:
    """An immutable basic block of tuple code.

    Parameters
    ----------
    tuples:
        The instructions in program order.
    name:
        Optional label, used only for diagnostics.
    """

    tuples: tuple[IRTuple, ...]
    name: str = "block"
    _index: Dict[int, int] = field(init=False, repr=False, compare=False, hash=False, default=None)

    def __init__(self, tuples: Iterable[IRTuple], name: str = "block"):
        object.__setattr__(self, "tuples", tuple(tuples))
        object.__setattr__(self, "name", name)
        object.__setattr__(
            self,
            "_index",
            {t.ident: pos for pos, t in enumerate(self.tuples)},
        )
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if len(self._index) != len(self.tuples):
            seen: set[int] = set()
            for t in self.tuples:
                if t.ident in seen:
                    raise BlockValidationError(
                        f"duplicate tuple reference number {t.ident}"
                    )
                seen.add(t.ident)
        for pos, t in enumerate(self.tuples):
            for ref in t.value_refs:
                target_pos = self._index.get(ref)
                if target_pos is None:
                    raise BlockValidationError(
                        f"tuple {t.ident} references unknown tuple {ref}"
                    )
                if target_pos >= pos:
                    raise BlockValidationError(
                        f"tuple {t.ident} references tuple {ref} which does "
                        "not precede it in program order"
                    )
                target = self.tuples[target_pos]
                if not target.op.produces_value:
                    raise BlockValidationError(
                        f"tuple {t.ident} references tuple {ref} "
                        f"({target.op.value}) which produces no value"
                    )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[IRTuple]:
        return iter(self.tuples)

    def __getitem__(self, pos: int) -> IRTuple:
        return self.tuples[pos]

    def by_ident(self, ident: int) -> IRTuple:
        """Look a tuple up by its reference number."""
        try:
            return self.tuples[self._index[ident]]
        except KeyError:
            raise KeyError(f"no tuple numbered {ident} in {self.name}") from None

    def position_of(self, ident: int) -> int:
        """Program-order position (0-based) of the tuple numbered ``ident``."""
        return self._index[ident]

    def __contains__(self, ident: int) -> bool:
        return ident in self._index

    @property
    def idents(self) -> tuple[int, ...]:
        """Reference numbers in program order."""
        return tuple(t.ident for t in self.tuples)

    # ------------------------------------------------------------------
    # Variable views
    # ------------------------------------------------------------------
    @property
    def loaded_variables(self) -> tuple[str, ...]:
        """Variables read by Load tuples, in first-occurrence order."""
        seen: dict[str, None] = {}
        for t in self.tuples:
            if t.op is Opcode.LOAD:
                seen.setdefault(t.variable, None)
        return tuple(seen)

    @property
    def stored_variables(self) -> tuple[str, ...]:
        """Variables written by Store tuples, in first-occurrence order."""
        seen: dict[str, None] = {}
        for t in self.tuples:
            if t.op is Opcode.STORE:
                seen.setdefault(t.variable, None)
        return tuple(seen)

    @property
    def variables(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for t in self.tuples:
            if t.variable is not None:
                seen.setdefault(t.variable, None)
        return tuple(seen)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reordered(self, order: Sequence[int]) -> "BasicBlock":
        """A new block with the same tuples in schedule order ``order``.

        ``order`` is a permutation of the block's reference numbers.  The
        result keeps the original reference numbers (so operand references
        stay meaningful) but is *not* validated for forward references —
        a scheduled block legally places consumers after producers by
        construction of the schedule, which is checked by the caller
        against the dependence DAG, not by positional validation.
        """
        if sorted(order) != sorted(self._index):
            raise BlockValidationError(
                "reorder must be a permutation of the block's tuples"
            )
        reordered = tuple(self.by_ident(i) for i in order)
        block = object.__new__(BasicBlock)
        object.__setattr__(block, "tuples", reordered)
        object.__setattr__(block, "name", self.name)
        object.__setattr__(
            block, "_index", {t.ident: pos for pos, t in enumerate(reordered)}
        )
        return block

    def renumbered(self) -> "BasicBlock":
        """A new block with tuples renumbered densely 1..n in program order.

        Operand references are rewritten to match.  Used by optimization
        passes after deleting tuples.
        """
        mapping = {t.ident: pos + 1 for pos, t in enumerate(self.tuples)}
        new_tuples = []
        for t in self.tuples:
            alpha = _remap(t.alpha, mapping)
            beta = _remap(t.beta, mapping)
            new_tuples.append(IRTuple(mapping[t.ident], t.op, alpha, beta))
        return BasicBlock(new_tuples, self.name)

    def without(self, idents: Iterable[int]) -> "BasicBlock":
        """A new block with the given tuples removed (references unchecked
        until construction, which will reject dangling uses)."""
        doomed = set(idents)
        return BasicBlock(
            (t for t in self.tuples if t.ident not in doomed), self.name
        )

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return "\n".join(str(t) for t in self.tuples)


def _remap(operand, mapping):
    if isinstance(operand, RefOperand):
        return RefOperand(mapping[operand.ref])
    return operand


class BlockBuilder:
    """Incremental construction of a basic block with automatic numbering.

    The front end and the synthetic generator both emit tuples one at a
    time; the builder hands out reference numbers and performs the final
    validation once.
    """

    def __init__(self, name: str = "block"):
        self._tuples: List[IRTuple] = []
        self._name = name

    @property
    def next_ident(self) -> int:
        return len(self._tuples) + 1

    def emit(self, op: Opcode, alpha=None, beta=None) -> int:
        """Append a tuple; returns its reference number."""
        ident = self.next_ident
        self._tuples.append(IRTuple(ident, op, alpha, beta))
        return ident

    def emit_const(self, value: int) -> int:
        from .tuples import ConstOperand

        return self.emit(Opcode.CONST, ConstOperand(value))

    def emit_load(self, var: str) -> int:
        return self.emit(Opcode.LOAD, VarOperand(var))

    def emit_store(self, var: str, ref: int) -> int:
        return self.emit(Opcode.STORE, VarOperand(var), RefOperand(ref))

    def emit_binary(self, op: Opcode, a: int, b: int) -> int:
        return self.emit(op, RefOperand(a), RefOperand(b))

    def emit_unary(self, op: Opcode, a: int) -> int:
        return self.emit(op, RefOperand(a))

    def tuple_at(self, ident: int) -> IRTuple:
        """The already-emitted tuple numbered ``ident``."""
        return self._tuples[ident - 1]

    def build(self) -> BasicBlock:
        return BasicBlock(self._tuples, self._name)

    def __len__(self) -> int:
        return len(self._tuples)
