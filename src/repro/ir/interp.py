"""Reference interpreter for tuple basic blocks.

The interpreter defines the *semantics* that every transformation in the
system must preserve: the optimizer, the schedulers, register allocation
and code generation are all checked (in the test suite) by comparing the
final memory state they induce with what this interpreter computes.

Execution is in schedule order: each tuple computes a value (except
``Store``), values flow through ``RefOperand`` references, ``Load`` reads
the memory environment and ``Store`` writes it.  A *legal* reschedule of a
block (one respecting the dependence DAG) never changes the outcome; the
property tests lean on this heavily.

Arithmetic is exact (``fractions.Fraction`` for division) so that
commutations performed by the optimizer cannot be confused with rounding.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Optional, Union

from .block import BasicBlock
from .ops import Opcode
from .tuples import ConstOperand, IRTuple, RefOperand, VarOperand

Value = Union[int, Fraction]


class UndefinedVariableError(KeyError):
    """A Load read a variable with no value in the environment."""


@dataclass
class ExecutionResult:
    """Outcome of interpreting a block."""

    memory: Dict[str, Value]
    tuple_values: Dict[int, Value]

    def value_of(self, ident: int) -> Value:
        return self.tuple_values[ident]

    def __getitem__(self, var: str) -> Value:
        return self.memory[var]


def run_block(
    block: BasicBlock,
    memory: Optional[Mapping[str, Value]] = None,
    order=None,
) -> ExecutionResult:
    """Interpret ``block`` and return the final memory and tuple values.

    Parameters
    ----------
    block:
        The block to execute.
    memory:
        Initial variable environment.  Variables loaded before any store
        must be present here, otherwise :class:`UndefinedVariableError`.
    order:
        Optional explicit execution order (a permutation of reference
        numbers).  Defaults to the block's program order.  Callers are
        responsible for only passing dependence-legal orders; the
        interpreter itself checks that every consumed value exists at
        consumption time and raises ``KeyError`` otherwise, which is how
        illegal schedules surface in tests.
    """
    env: Dict[str, Value] = dict(memory or {})
    values: Dict[int, Value] = {}
    sequence = (
        block.tuples if order is None else tuple(block.by_ident(i) for i in order)
    )
    for t in sequence:
        _step(t, env, values)
    return ExecutionResult(env, values)


def _step(t: IRTuple, env: Dict[str, Value], values: Dict[int, Value]) -> None:
    op = t.op
    if op is Opcode.CONST:
        assert isinstance(t.alpha, ConstOperand)
        values[t.ident] = t.alpha.value
    elif op is Opcode.LOAD:
        assert isinstance(t.alpha, VarOperand)
        try:
            values[t.ident] = env[t.alpha.name]
        except KeyError:
            raise UndefinedVariableError(t.alpha.name) from None
    elif op is Opcode.STORE:
        assert isinstance(t.alpha, VarOperand) and isinstance(t.beta, RefOperand)
        env[t.alpha.name] = values[t.beta.ref]
    elif op in (Opcode.COPY, Opcode.NEG):
        assert isinstance(t.alpha, RefOperand)
        values[t.ident] = op.evaluate(values[t.alpha.ref])
    else:
        assert isinstance(t.alpha, RefOperand) and isinstance(t.beta, RefOperand)
        values[t.ident] = op.evaluate(values[t.alpha.ref], values[t.beta.ref])


def blocks_equivalent(
    a: BasicBlock,
    b: BasicBlock,
    memory: Mapping[str, Value],
    order_a=None,
    order_b=None,
) -> bool:
    """True when two blocks leave identical final memory from ``memory``.

    This is the observational-equivalence relation used to validate the
    optimizer (which deletes and renumbers tuples, so tuple values are not
    comparable — only memory is).
    """
    ra = run_block(a, memory, order_a)
    rb = run_block(b, memory, order_b)
    return _normalize(ra.memory) == _normalize(rb.memory)


def _normalize(memory: Mapping[str, Value]) -> Dict[str, Fraction]:
    return {k: Fraction(v) for k, v in memory.items()}
