"""Dependence DAG over a basic block.

The pipeline scheduler's input is "an initial (list) schedule and the DAG
it embeds" (section 4.2).  This module derives that DAG from a
:class:`~repro.ir.block.BasicBlock` and provides the quantities the search
algorithm needs:

* ``rho(z)`` — Definition 2: the immediate predecessors of ``z``;
* ``earliest(z)`` / ``latest(z)`` — Definitions 6 and 7: bounds on the
  schedule position of ``z`` implied by the dependence structure;
* transitive ancestor/descendant sets, heights and depths (used by the
  list scheduler's priorities);
* counting/enumeration of legal schedules (topological orders), used to
  reproduce the "Pruning Illegal Calls" column of Table 1.

Dependence kinds
----------------
Three kinds of edges are recorded, all derived from program order:

* **flow** — a tuple consumes the *result* of another (``RefOperand``),
  or a ``Load`` of a variable follows a ``Store`` to it;
* **anti** — a ``Store`` follows a ``Load`` of the same variable;
* **output** — a ``Store`` follows a ``Store`` to the same variable.

The paper's tuple form makes variables "unambiguous and mutually
exclusive" (section 3.1), and within a block its DAG construction reuses
computed values, so in front-end output the anti/output edges are almost
always shadowed by flow edges; they are kept because schedulers must stay
correct on hand-written or randomly generated tuple code too.

The NOP-insertion algorithm applies the producer-pipeline latency
uniformly to every edge in ``rho`` (section 4.2.2 step [6]); see
``repro.sched.nop_insertion`` for the timing consequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .block import BasicBlock
from .ops import Opcode


#: Result of legal-schedule counting when the cap was hit.
COUNT_CAPPED = -1


@dataclass(frozen=True, slots=True)
class DependenceEdge:
    """A dependence of ``consumer`` on ``producer`` (by reference number)."""

    producer: int
    consumer: int
    kind: str  # "flow" | "anti" | "output"

    def __str__(self) -> str:
        return f"{self.producer} -{self.kind}-> {self.consumer}"


class DependenceDAG:
    """The dependence DAG embedded in a basic block's program order.

    ``extra_edges`` adds ordering constraints beyond the memory/value
    dependences derived from the tuples — e.g. the artificial anti/output
    dependences induced by register reuse when modelling a *postpass*
    scheduler (``repro.postpass``).  Every extra edge must run forward in
    program order (the block's order must remain a legal schedule).
    """

    def __init__(
        self,
        block: BasicBlock,
        extra_edges: Optional[Iterable[DependenceEdge]] = None,
    ):
        self.block = block
        self._preds: Dict[int, FrozenSet[int]] = {}
        self._succs: Dict[int, FrozenSet[int]] = {}
        self._edges: List[DependenceEdge] = []
        self._extra = tuple(extra_edges) if extra_edges else ()
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        preds: Dict[int, set[int]] = {t.ident: set() for t in self.block}
        succs: Dict[int, set[int]] = {t.ident: set() for t in self.block}
        edges: List[DependenceEdge] = []
        last_store: Dict[str, int] = {}
        loads_since_store: Dict[str, List[int]] = {}

        def link(producer: int, consumer: int, kind: str) -> None:
            if producer == consumer:
                return
            if consumer not in succs[producer]:
                edges.append(DependenceEdge(producer, consumer, kind))
            preds[consumer].add(producer)
            succs[producer].add(consumer)

        for t in self.block:
            for ref in t.value_refs:
                link(ref, t.ident, "flow")
            var = t.variable
            if var is None:
                continue
            if t.op is Opcode.LOAD:
                if var in last_store:
                    link(last_store[var], t.ident, "flow")
                loads_since_store.setdefault(var, []).append(t.ident)
            elif t.op is Opcode.STORE:
                if var in last_store:
                    link(last_store[var], t.ident, "output")
                for load_ident in loads_since_store.get(var, ()):
                    link(load_ident, t.ident, "anti")
                last_store[var] = t.ident
                loads_since_store[var] = []

        for edge in self._extra:
            if edge.producer not in preds or edge.consumer not in preds:
                raise ValueError(
                    f"extra edge {edge} references tuples outside the block"
                )
            if self.block.position_of(edge.producer) >= self.block.position_of(
                edge.consumer
            ):
                raise ValueError(
                    f"extra edge {edge} runs backward in program order"
                )
            link(edge.producer, edge.consumer, edge.kind)

        self._preds = {k: frozenset(v) for k, v in preds.items()}
        self._succs = {k: frozenset(v) for k, v in succs.items()}
        self._edges = edges

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.block)

    @property
    def idents(self) -> Tuple[int, ...]:
        return self.block.idents

    @property
    def edges(self) -> Tuple[DependenceEdge, ...]:
        return tuple(self._edges)

    def rho(self, ident: int) -> FrozenSet[int]:
        """Definition 2 — the immediate predecessors of tuple ``ident``."""
        return self._preds[ident]

    def successors(self, ident: int) -> FrozenSet[int]:
        return self._succs[ident]

    @cached_property
    def roots(self) -> Tuple[int, ...]:
        """Tuples with no predecessors, in program order."""
        return tuple(i for i in self.idents if not self._preds[i])

    @cached_property
    def sinks(self) -> Tuple[int, ...]:
        """Tuples with no successors, in program order."""
        return tuple(i for i in self.idents if not self._succs[i])

    # ------------------------------------------------------------------
    # Transitive structure
    # ------------------------------------------------------------------
    @cached_property
    def ancestors(self) -> Dict[int, FrozenSet[int]]:
        """Transitive predecessors of each tuple."""
        out: Dict[int, FrozenSet[int]] = {}
        # Program order is a topological order of the DAG by construction.
        for t in self.block:
            acc: set[int] = set()
            for p in self._preds[t.ident]:
                acc.add(p)
                acc.update(out[p])
            out[t.ident] = frozenset(acc)
        return out

    @cached_property
    def descendants(self) -> Dict[int, FrozenSet[int]]:
        """Transitive successors of each tuple."""
        out: Dict[int, FrozenSet[int]] = {}
        for t in reversed(self.block.tuples):
            acc: set[int] = set()
            for s in self._succs[t.ident]:
                acc.add(s)
                acc.update(out[s])
            out[t.ident] = frozenset(acc)
        return out

    def earliest(self, ident: int) -> int:
        """Definition 6 — the minimum number of instructions which must
        execute before ``ident``: the size of the slice rooted at it."""
        return len(self.ancestors[ident])

    def latest(self, ident: int) -> int:
        """Definition 7 — the maximum number of instructions which could
        execute before ``ident``: everything except itself and the
        instructions that transitively depend on it."""
        return len(self.block) - 1 - len(self.descendants[ident])

    @cached_property
    def heights(self) -> Dict[int, int]:
        """Longest path (in edges) from each tuple to any sink.

        The machine-independent priority used by the list scheduler: a
        tuple far above the sinks has many dependents waiting on it, so
        issuing it early maximizes producer-to-consumer distances.
        """
        out: Dict[int, int] = {}
        for t in reversed(self.block.tuples):
            succ = self._succs[t.ident]
            out[t.ident] = 0 if not succ else 1 + max(out[s] for s in succ)
        return out

    @cached_property
    def depths(self) -> Dict[int, int]:
        """Longest path (in edges) from any root to each tuple."""
        out: Dict[int, int] = {}
        for t in self.block:
            pred = self._preds[t.ident]
            out[t.ident] = 0 if not pred else 1 + max(out[p] for p in pred)
        return out

    @cached_property
    def critical_path_length(self) -> int:
        """Longest dependence chain in the block, in instructions."""
        if not len(self.block):
            return 0
        return 1 + max(self.heights.values())

    # ------------------------------------------------------------------
    # Legality of schedules
    # ------------------------------------------------------------------
    def is_legal_order(self, order: Sequence[int]) -> bool:
        """True when ``order`` is a permutation of the block's tuples that
        respects every dependence edge."""
        if sorted(order) != sorted(self.idents):
            return False
        position = {ident: pos for pos, ident in enumerate(order)}
        return all(
            position[p] < position[t]
            for t in self.idents
            for p in self._preds[t]
        )

    def iter_legal_orders(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield every topological order of the DAG (up to ``limit``).

        Orders are produced in lexicographic order of program-order
        positions.  This realizes the "pruning illegal" baseline of
        section 2.3: an exhaustive search restricted to legal schedules.
        """
        n = len(self.block)
        produced = 0
        indegree = {i: len(self._preds[i]) for i in self.idents}
        ready = [i for i in self.idents if indegree[i] == 0]
        prefix: List[int] = []

        def rec() -> Iterator[Tuple[int, ...]]:
            nonlocal produced
            if len(prefix) == n:
                produced += 1
                yield tuple(prefix)
                return
            # Iterate over a snapshot: the ready list mutates during recursion.
            for ident in sorted(ready, key=self.block.position_of):
                if limit is not None and produced >= limit:
                    return
                ready.remove(ident)
                prefix.append(ident)
                opened = []
                for s in self._succs[ident]:
                    indegree[s] -= 1
                    if indegree[s] == 0:
                        ready.append(s)
                        opened.append(s)
                yield from rec()
                for s in opened:
                    ready.remove(s)
                for s in self._succs[ident]:
                    indegree[s] += 1
                prefix.pop()
                ready.append(ident)

        yield from rec()

    def count_legal_orders(self, cap: int = 10_000_000) -> int:
        """Count topological orders of the DAG.

        Returns :data:`COUNT_CAPPED` when the count exceeds ``cap`` —
        Table 1 of the paper reports such entries as ``>9,999,000``.

        Uses memoization over *downsets* (the set of already-scheduled
        tuples), which collapses the n! permutations into a number of
        states bounded by the DAG's antichain structure.
        """
        idents = self.idents
        n = len(idents)
        if n == 0:
            return 1
        bit = {ident: 1 << k for k, ident in enumerate(idents)}
        pred_masks = {
            ident: sum(bit[p] for p in self._preds[ident]) for ident in idents
        }
        memo: Dict[int, int] = {}
        full = (1 << n) - 1

        def count(scheduled: int) -> int:
            if scheduled == full:
                return 1
            hit = memo.get(scheduled)
            if hit is not None:
                return hit
            total = 0
            for ident in idents:
                b = bit[ident]
                if scheduled & b:
                    continue
                if pred_masks[ident] & ~scheduled:
                    continue
                total += count(scheduled | b)
                if total > cap:
                    memo[scheduled] = total
                    return total
            memo[scheduled] = total
            return total

        # Deep DAGs recurse one level per instruction; keep Python's
        # default limit out of the way for blocks of a few hundred tuples.
        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, n * 10 + 1000))
        try:
            total = count(0)
        finally:
            sys.setrecursionlimit(old_limit)
        return COUNT_CAPPED if total > cap else total

    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a :mod:`networkx` DiGraph (for analysis/examples)."""
        import networkx as nx

        g = nx.DiGraph(name=self.block.name)
        for t in self.block:
            g.add_node(t.ident, op=t.op.value)
        for e in self._edges:
            g.add_edge(e.producer, e.consumer, kind=e.kind)
        return g

    def to_dot(self) -> str:
        """Graphviz DOT rendering (for papers, docs, and debugging).

        Flow edges are solid, anti edges dashed, output edges dotted —
        the classic dependence-graph styling.
        """
        styles = {"flow": "solid", "anti": "dashed", "output": "dotted"}
        lines = [f'digraph "{self.block.name}" {{', "  rankdir=TB;"]
        for t in self.block:
            label = str(t).replace('"', '\\"')
            lines.append(f'  n{t.ident} [label="{label}", shape=box];')
        for e in self._edges:
            lines.append(
                f"  n{e.producer} -> n{e.consumer} "
                f'[style={styles.get(e.kind, "solid")}];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __str__(self) -> str:
        lines = [f"DAG({self.block.name}, {len(self)} tuples)"]
        lines += [f"  {e}" for e in self._edges]
        return "\n".join(lines)
