"""The tuple intermediate form.

Section 3.1 of the paper: *"The notation we use for each instruction is
that of a tuple of the form* ``i, O, alpha, beta`` *where* ``i`` *is the
reference number of the tuple,* ``O`` *is the operation type, and*
``alpha`` *and* ``beta`` *are two operands.  Each operand can be a
variable, the result of another tuple (the reference number of another
tuple), or empty."*

Operands are modelled with three small immutable classes rather than bare
strings/ints so that the type of every operand is explicit:

* :class:`VarOperand` — a reference to a named memory variable (``#a``).
* :class:`ConstOperand` — a literal constant (only valid for ``Const``).
* :class:`RefOperand` — the result of another tuple, by reference number.

A tuple with no operand in a slot stores ``None`` (the paper's ∅).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .ops import Opcode


@dataclass(frozen=True, slots=True)
class VarOperand:
    """A reference to a named, unambiguous memory variable."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("variable operand requires a non-empty name")

    def __str__(self) -> str:
        return f"#{self.name}"


@dataclass(frozen=True, slots=True)
class ConstOperand:
    """A literal constant value (integer, as in the paper's examples)."""

    value: int

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True, slots=True)
class RefOperand:
    """The result of another tuple, identified by its reference number."""

    ref: int

    def __post_init__(self) -> None:
        if self.ref < 1:
            raise ValueError("tuple reference numbers start at 1")

    def __str__(self) -> str:
        return str(self.ref)


Operand = Union[VarOperand, ConstOperand, RefOperand]


@dataclass(frozen=True, slots=True)
class IRTuple:
    """One instruction ``(i, O, alpha, beta)`` of the intermediate form.

    Instances are immutable; optimization passes build new tuples rather
    than mutating existing ones, which keeps blocks safely shareable
    between the scheduler's many candidate orderings.
    """

    ident: int
    op: Opcode
    alpha: Optional[Operand] = None
    beta: Optional[Operand] = None

    def __post_init__(self) -> None:
        if self.ident < 1:
            raise ValueError("tuple reference numbers start at 1")
        self._check_shape()

    # ------------------------------------------------------------------
    def _check_shape(self) -> None:
        op = self.op
        if op is Opcode.CONST:
            if not isinstance(self.alpha, ConstOperand) or self.beta is not None:
                raise ValueError("Const expects a single literal operand")
        elif op is Opcode.LOAD:
            if not isinstance(self.alpha, VarOperand) or self.beta is not None:
                raise ValueError("Load expects a single variable operand")
        elif op is Opcode.STORE:
            if not isinstance(self.alpha, VarOperand):
                raise ValueError("Store expects a variable in alpha")
            if not isinstance(self.beta, RefOperand):
                raise ValueError("Store expects a tuple reference in beta")
        elif op in (Opcode.COPY, Opcode.NEG):
            if not isinstance(self.alpha, RefOperand) or self.beta is not None:
                raise ValueError(f"{op.value} expects a single tuple reference")
        else:  # binary arithmetic
            if not isinstance(self.alpha, RefOperand) or not isinstance(
                self.beta, RefOperand
            ):
                raise ValueError(
                    f"{op.value} expects two tuple-reference operands"
                )

    # ------------------------------------------------------------------
    @property
    def operands(self) -> tuple[Operand, ...]:
        """The non-empty operands, in (alpha, beta) order."""
        out = []
        if self.alpha is not None:
            out.append(self.alpha)
        if self.beta is not None:
            out.append(self.beta)
        return tuple(out)

    @property
    def value_refs(self) -> tuple[int, ...]:
        """Reference numbers of tuples whose *results* this tuple consumes."""
        return tuple(
            operand.ref
            for operand in self.operands
            if isinstance(operand, RefOperand)
        )

    @property
    def variable(self) -> Optional[str]:
        """The memory variable touched by a Load/Store, else ``None``."""
        if self.op in (Opcode.LOAD, Opcode.STORE):
            assert isinstance(self.alpha, VarOperand)
            return self.alpha.name
        return None

    def with_ident(self, ident: int) -> "IRTuple":
        """A copy of this tuple renumbered to ``ident`` (operands untouched)."""
        return IRTuple(ident, self.op, self.alpha, self.beta)

    def with_operands(
        self, alpha: Optional[Operand], beta: Optional[Operand]
    ) -> "IRTuple":
        return IRTuple(self.ident, self.op, alpha, beta)

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = ", ".join(str(o) for o in self.operands)
        if parts:
            return f"{self.ident}: {self.op.value} {parts}"
        return f"{self.ident}: {self.op.value}"


# ----------------------------------------------------------------------
# Convenience constructors (used heavily by tests and the front end)
# ----------------------------------------------------------------------
def const(ident: int, value: int) -> IRTuple:
    return IRTuple(ident, Opcode.CONST, ConstOperand(value))


def load(ident: int, var: str) -> IRTuple:
    return IRTuple(ident, Opcode.LOAD, VarOperand(var))


def store(ident: int, var: str, ref: int) -> IRTuple:
    return IRTuple(ident, Opcode.STORE, VarOperand(var), RefOperand(ref))


def copy(ident: int, ref: int) -> IRTuple:
    return IRTuple(ident, Opcode.COPY, RefOperand(ref))


def neg(ident: int, ref: int) -> IRTuple:
    return IRTuple(ident, Opcode.NEG, RefOperand(ref))


def add(ident: int, a: int, b: int) -> IRTuple:
    return IRTuple(ident, Opcode.ADD, RefOperand(a), RefOperand(b))


def sub(ident: int, a: int, b: int) -> IRTuple:
    return IRTuple(ident, Opcode.SUB, RefOperand(a), RefOperand(b))


def mul(ident: int, a: int, b: int) -> IRTuple:
    return IRTuple(ident, Opcode.MUL, RefOperand(a), RefOperand(b))


def div(ident: int, a: int, b: int) -> IRTuple:
    return IRTuple(ident, Opcode.DIV, RefOperand(a), RefOperand(b))
