"""Operation types for the tuple intermediate form.

The paper (section 3.1) represents each instruction as a tuple
``(i, O, alpha, beta)`` where ``O`` is the operation type.  The operation
vocabulary used throughout the paper's examples and its synthetic
benchmarks is small: ``Const``, ``Load``, ``Store`` and the four binary
arithmetic operations ``Add``, ``Sub``, ``Mul``, ``Div``.  We add ``Neg``
(unary minus) and ``Copy`` (register-to-register move) because the front
end's source language needs them; both behave like single-cycle,
non-pipelined operations by default, exactly like ``Add``/``Sub`` on the
paper's simulation machine.

Each opcode carries enough static information for the rest of the system:
its arity, whether it produces a value, whether it reads or writes memory,
and (for the arithmetic opcodes) a Python evaluator used by the reference
interpreter.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Callable


class Opcode(enum.Enum):
    """Operation type ``O`` of a tuple ``(i, O, alpha, beta)``."""

    CONST = "Const"
    LOAD = "Load"
    STORE = "Store"
    COPY = "Copy"
    NEG = "Neg"
    ADD = "Add"
    SUB = "Sub"
    MUL = "Mul"
    DIV = "Div"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    # ------------------------------------------------------------------
    # Static classification
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of operands the opcode consumes."""
        return _ARITY[self]

    @property
    def produces_value(self) -> bool:
        """True when other tuples may reference this tuple's result."""
        return self is not Opcode.STORE

    @property
    def reads_memory(self) -> bool:
        return self is Opcode.LOAD

    @property
    def writes_memory(self) -> bool:
        return self is Opcode.STORE

    @property
    def is_arithmetic(self) -> bool:
        return self in _EVALUATORS

    @property
    def is_commutative(self) -> bool:
        return self in (Opcode.ADD, Opcode.MUL)

    # ------------------------------------------------------------------
    # Evaluation (reference interpreter support)
    # ------------------------------------------------------------------
    def evaluate(self, a, b=None):
        """Apply the arithmetic operation to already-computed operand values.

        Division is exact (``fractions.Fraction``) so that semantics
        preservation tests are not confounded by integer truncation or
        floating-point rounding.
        """
        fn = _EVALUATORS.get(self)
        if fn is None:
            raise ValueError(f"opcode {self.value} is not directly evaluable")
        return fn(a, b)


def parse_opcode(text: str) -> Opcode:
    """Parse an opcode from its linear-notation spelling (case-insensitive)."""
    try:
        return _BY_NAME[text.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown opcode: {text!r}") from None


_ARITY = {
    Opcode.CONST: 1,  # the literal itself occupies alpha
    Opcode.LOAD: 1,  # the variable name occupies alpha
    Opcode.STORE: 2,  # variable name, value
    Opcode.COPY: 1,
    Opcode.NEG: 1,
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.DIV: 2,
}


def _div(a, b):
    if b == 0:
        # The interpreter treats division by zero as an arithmetic fault;
        # callers that randomly generate programs catch this.
        raise ZeroDivisionError("tuple Div by zero")
    return Fraction(a) / Fraction(b)


_EVALUATORS: dict[Opcode, Callable] = {
    Opcode.COPY: lambda a, b: a,
    Opcode.NEG: lambda a, b: -a,
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: lambda a, b: _div(a, b),
}

_BY_NAME = {op.value.lower(): op for op in Opcode}

#: Opcodes whose result may feed arithmetic (everything but Store).
VALUE_PRODUCING_OPCODES = tuple(op for op in Opcode if op.produces_value)

#: The binary arithmetic opcodes, in a stable order.
BINARY_ARITHMETIC = (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV)
