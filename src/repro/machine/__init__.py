"""Target machine model: pipelines and operation mappings."""

from .machine import (
    UNPIPELINED_LATENCY,
    MachineDescription,
    MachineValidationError,
)
from .pipeline import PipelineDesc
from .presets import (
    PRESETS,
    asymmetric_units_machine,
    deep_memory_machine,
    get_machine,
    paper_example_machine,
    paper_simulation_machine,
    scalar_machine,
    unpipelined_units_machine,
)
from .serialize import (
    MachineSyntaxError,
    format_machine,
    load_machine,
    machine_from_dict,
    machine_to_dict,
    parse_machine,
    save_machine,
)

__all__ = [
    "PipelineDesc",
    "MachineDescription",
    "MachineValidationError",
    "UNPIPELINED_LATENCY",
    "PRESETS",
    "deep_memory_machine",
    "get_machine",
    "paper_example_machine",
    "paper_simulation_machine",
    "scalar_machine",
    "unpipelined_units_machine",
    "asymmetric_units_machine",
    "MachineSyntaxError",
    "format_machine",
    "load_machine",
    "machine_from_dict",
    "machine_to_dict",
    "parse_machine",
    "save_machine",
]
