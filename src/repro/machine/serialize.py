"""Machine-description files.

Section 4.1's point is that retargeting is *pure data*: "changing the
pipeline structure changes only the entries in these tables, not the
structure of the scheduling algorithm."  This module makes the two
tables a file format so users can describe their own machines without
writing Python.

The text format mirrors the paper's tables directly::

    machine paper-simulation

    ; pipeline  <function>  <id>  <latency>  <enqueue-time>
    pipeline loader      1  2  1
    pipeline multiplier  2  4  2

    ; op  <Opcode>  <pipeline ids...>   (omit ids for "no pipeline")
    op Load  1
    op Mul   2
    op Div   2

A JSON-friendly dict form (:func:`machine_to_dict` /
:func:`machine_from_dict`) is provided for programmatic exchange; both
round-trip exactly (property-tested).
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..ir.ops import Opcode, parse_opcode
from .machine import MachineDescription
from .pipeline import PipelineDesc


class MachineSyntaxError(ValueError):
    """Raised on malformed machine-description text."""

    def __init__(self, message: str, line_no: int):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


# ----------------------------------------------------------------------
# Dict form
# ----------------------------------------------------------------------
def machine_to_dict(machine: MachineDescription) -> Dict:
    """A JSON-serializable description of ``machine``."""
    return {
        "name": machine.name,
        "pipelines": [
            {
                "function": p.function,
                "id": p.ident,
                "latency": p.latency,
                "enqueue_time": p.enqueue_time,
            }
            for p in machine.pipelines
        ],
        "op_map": {
            op.value: sorted(pids)
            for op, pids in machine.op_map.items()
            if pids
        },
    }


def machine_from_dict(data: Mapping) -> MachineDescription:
    """Inverse of :func:`machine_to_dict` (validates via the constructor)."""
    try:
        pipelines = [
            PipelineDesc(
                entry["function"],
                entry["id"],
                entry["latency"],
                entry["enqueue_time"],
            )
            for entry in data["pipelines"]
        ]
        op_map = {
            parse_opcode(name): set(pids)
            for name, pids in data.get("op_map", {}).items()
        }
        name = data["name"]
    except KeyError as exc:
        raise ValueError(f"machine dict missing key: {exc}") from None
    return MachineDescription(name, pipelines, op_map)


# ----------------------------------------------------------------------
# Text form
# ----------------------------------------------------------------------
def format_machine(machine: MachineDescription) -> str:
    """Render ``machine`` in the table-file format."""
    lines: List[str] = [f"machine {machine.name}", ""]
    lines.append("; pipeline  <function>  <id>  <latency>  <enqueue-time>")
    for p in machine.pipelines:
        lines.append(
            f"pipeline {p.function}  {p.ident}  {p.latency}  {p.enqueue_time}"
        )
    lines.append("")
    lines.append("; op  <Opcode>  <pipeline ids...>")
    for op in Opcode:
        pids = machine.pipelines_for(op)
        if pids:
            rendered = "  ".join(str(i) for i in sorted(pids))
            lines.append(f"op {op.value}  {rendered}")
    return "\n".join(lines) + "\n"


def parse_machine(text: str) -> MachineDescription:
    """Parse the table-file format back into a machine description."""
    name = None
    pipelines: List[PipelineDesc] = []
    op_map: Dict[Opcode, set] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0].lower()
        if keyword == "machine":
            if len(fields) != 2:
                raise MachineSyntaxError("machine takes exactly one name", line_no)
            if name is not None:
                raise MachineSyntaxError("duplicate machine line", line_no)
            name = fields[1]
        elif keyword == "pipeline":
            if len(fields) != 5:
                raise MachineSyntaxError(
                    "pipeline takes: function id latency enqueue-time", line_no
                )
            try:
                pipelines.append(
                    PipelineDesc(
                        fields[1], int(fields[2]), int(fields[3]), int(fields[4])
                    )
                )
            except ValueError as exc:
                raise MachineSyntaxError(str(exc), line_no) from None
        elif keyword == "op":
            if len(fields) < 2:
                raise MachineSyntaxError("op takes an opcode and pipeline ids", line_no)
            try:
                op = parse_opcode(fields[1])
            except ValueError as exc:
                raise MachineSyntaxError(str(exc), line_no) from None
            try:
                pids = {int(f) for f in fields[2:]}
            except ValueError:
                raise MachineSyntaxError("pipeline ids must be integers", line_no) from None
            op_map.setdefault(op, set()).update(pids)
        else:
            raise MachineSyntaxError(f"unknown keyword {fields[0]!r}", line_no)
    if name is None:
        raise MachineSyntaxError("missing 'machine <name>' line", 1)
    try:
        return MachineDescription(name, pipelines, op_map)
    except ValueError as exc:
        raise ValueError(f"invalid machine {name!r}: {exc}") from None


def load_machine(path) -> MachineDescription:
    """Read a machine description from a file path."""
    with open(path) as fh:
        return parse_machine(fh.read())


def save_machine(machine: MachineDescription, path) -> None:
    """Write ``machine`` to a file path in the table format."""
    with open(path, "w") as fh:
        fh.write(format_machine(machine))
