"""Machine-description files.

Section 4.1's point is that retargeting is *pure data*: "changing the
pipeline structure changes only the entries in these tables, not the
structure of the scheduling algorithm."  This module makes the two
tables a file format so users can describe their own machines without
writing Python.

The text format mirrors the paper's tables directly::

    machine paper-simulation

    ; pipeline  <function>  <id>  <latency>  <enqueue-time>
    pipeline loader      1  2  1
    pipeline multiplier  2  4  2

    ; op  <Opcode>  <pipeline ids...>   (omit ids for "no pipeline")
    op Load  1
    op Mul   2
    op Div   2

A JSON-friendly dict form (:func:`machine_to_dict` /
:func:`machine_from_dict`) is provided for programmatic exchange; both
round-trip exactly (property-tested).
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..ir.ops import Opcode, parse_opcode
from .machine import MachineDescription, MachineValidationError
from .pipeline import PipelineDesc


class MachineSyntaxError(ValueError):
    """Raised on malformed machine-description text."""

    def __init__(self, message: str, line_no: int):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


# ----------------------------------------------------------------------
# Dict form
# ----------------------------------------------------------------------
def machine_to_dict(machine: MachineDescription) -> Dict:
    """A JSON-serializable description of ``machine``."""
    return {
        "name": machine.name,
        "pipelines": [
            {
                "function": p.function,
                "id": p.ident,
                "latency": p.latency,
                "enqueue_time": p.enqueue_time,
            }
            for p in machine.pipelines
        ],
        "op_map": {
            op.value: sorted(pids)
            for op, pids in machine.op_map.items()
            if pids
        },
    }


_MACHINE_KEYS = frozenset({"name", "pipelines", "op_map"})
_PIPELINE_KEYS = frozenset({"function", "id", "latency", "enqueue_time"})


def _int_entry(entry: Mapping, key: str, where: str) -> int:
    if key not in entry:
        raise MachineValidationError(f"missing key: {key!r}", field=where)
    value = entry[key]
    # bool is an int subclass but `"latency": true` is a mistake, not a 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise MachineValidationError(
            f"must be an integer, got {value!r}", field=f"{where}.{key}"
        )
    return value


def machine_from_dict(data: Mapping) -> MachineDescription:
    """Inverse of :func:`machine_to_dict`.

    Untrusted-input hardening: every structural problem — unknown or
    missing keys, wrong types, non-positive latencies/enqueue times,
    duplicate pipeline ids, unknown opcodes or pipeline references —
    raises :class:`MachineValidationError` whose ``field`` names the
    offending entry (``"pipelines[2].latency"``), so CLI users editing a
    JSON machine by hand get pointed at the exact datum.  (Duplicate
    *function names* are legal: a machine with two loader pipelines is
    exactly what the multi-pipeline extension schedules over.)
    """
    if not isinstance(data, Mapping):
        raise MachineValidationError(
            f"must be an object, got {type(data).__name__}", field="machine"
        )
    unknown = sorted(set(data) - _MACHINE_KEYS)
    if unknown:
        raise MachineValidationError(
            f"unknown key(s): {', '.join(map(repr, unknown))}", field="machine"
        )
    for key in ("name", "pipelines"):
        if key not in data:
            raise MachineValidationError(f"missing key: {key!r}", field="machine")
    name = data["name"]
    if not isinstance(name, str) or not name:
        raise MachineValidationError("must be a non-empty string", field="name")
    raw_pipelines = data["pipelines"]
    if not isinstance(raw_pipelines, (list, tuple)):
        raise MachineValidationError(
            "must be a list of pipeline entries", field="pipelines"
        )
    pipelines: List[PipelineDesc] = []
    seen_ids: Dict[int, int] = {}
    for i, entry in enumerate(raw_pipelines):
        where = f"pipelines[{i}]"
        if not isinstance(entry, Mapping):
            raise MachineValidationError("must be an object", field=where)
        unknown = sorted(set(entry) - _PIPELINE_KEYS)
        if unknown:
            raise MachineValidationError(
                f"unknown key(s): {', '.join(map(repr, unknown))}", field=where
            )
        function = entry.get("function")
        if not isinstance(function, str) or not function:
            raise MachineValidationError(
                "must be a non-empty string", field=f"{where}.function"
            )
        ident = _int_entry(entry, "id", where)
        latency = _int_entry(entry, "latency", where)
        enqueue = _int_entry(entry, "enqueue_time", where)
        if ident < 1:
            raise MachineValidationError(
                f"pipeline identifiers start at 1, got {ident}",
                field=f"{where}.id",
            )
        if latency < 1:
            raise MachineValidationError(
                f"latency must be at least 1 clock tick, got {latency}",
                field=f"{where}.latency",
            )
        if enqueue < 1:
            raise MachineValidationError(
                f"enqueue time must be at least 1 clock tick, got {enqueue}",
                field=f"{where}.enqueue_time",
            )
        if enqueue > latency:
            raise MachineValidationError(
                f"enqueue time cannot exceed latency ({enqueue} > {latency})",
                field=f"{where}.enqueue_time",
            )
        if ident in seen_ids:
            raise MachineValidationError(
                f"duplicate pipeline id {ident} "
                f"(already used by pipelines[{seen_ids[ident]}])",
                field=f"{where}.id",
            )
        seen_ids[ident] = i
        pipelines.append(PipelineDesc(function, ident, latency, enqueue))
    raw_op_map = data.get("op_map", {})
    if not isinstance(raw_op_map, Mapping):
        raise MachineValidationError(
            "must be an object mapping opcodes to pipeline-id lists",
            field="op_map",
        )
    op_map: Dict[Opcode, set] = {}
    for op_name, raw_pids in raw_op_map.items():
        where = f"op_map[{op_name!r}]"
        try:
            op = parse_opcode(op_name)
        except (ValueError, TypeError) as exc:
            raise MachineValidationError(str(exc), field=where) from None
        if not isinstance(raw_pids, (list, tuple, set, frozenset)):
            raise MachineValidationError(
                "must be a list of pipeline ids", field=where
            )
        pids = set()
        for pid in raw_pids:
            if isinstance(pid, bool) or not isinstance(pid, int):
                raise MachineValidationError(
                    f"pipeline ids must be integers, got {pid!r}", field=where
                )
            if pid not in seen_ids:
                raise MachineValidationError(
                    f"references unknown pipeline id {pid}", field=where
                )
            pids.add(pid)
        op_map[op] = pids
    return MachineDescription(name, pipelines, op_map)


# ----------------------------------------------------------------------
# Text form
# ----------------------------------------------------------------------
def format_machine(machine: MachineDescription) -> str:
    """Render ``machine`` in the table-file format."""
    lines: List[str] = [f"machine {machine.name}", ""]
    lines.append("; pipeline  <function>  <id>  <latency>  <enqueue-time>")
    for p in machine.pipelines:
        lines.append(
            f"pipeline {p.function}  {p.ident}  {p.latency}  {p.enqueue_time}"
        )
    lines.append("")
    lines.append("; op  <Opcode>  <pipeline ids...>")
    for op in Opcode:
        pids = machine.pipelines_for(op)
        if pids:
            rendered = "  ".join(str(i) for i in sorted(pids))
            lines.append(f"op {op.value}  {rendered}")
    return "\n".join(lines) + "\n"


def parse_machine(text: str) -> MachineDescription:
    """Parse the table-file format back into a machine description."""
    name = None
    pipelines: List[PipelineDesc] = []
    op_map: Dict[Opcode, set] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0].lower()
        if keyword == "machine":
            if len(fields) != 2:
                raise MachineSyntaxError("machine takes exactly one name", line_no)
            if name is not None:
                raise MachineSyntaxError("duplicate machine line", line_no)
            name = fields[1]
        elif keyword == "pipeline":
            if len(fields) != 5:
                raise MachineSyntaxError(
                    "pipeline takes: function id latency enqueue-time", line_no
                )
            try:
                pipelines.append(
                    PipelineDesc(
                        fields[1], int(fields[2]), int(fields[3]), int(fields[4])
                    )
                )
            except ValueError as exc:
                raise MachineSyntaxError(str(exc), line_no) from None
        elif keyword == "op":
            if len(fields) < 2:
                raise MachineSyntaxError("op takes an opcode and pipeline ids", line_no)
            try:
                op = parse_opcode(fields[1])
            except ValueError as exc:
                raise MachineSyntaxError(str(exc), line_no) from None
            try:
                pids = {int(f) for f in fields[2:]}
            except ValueError:
                raise MachineSyntaxError("pipeline ids must be integers", line_no) from None
            op_map.setdefault(op, set()).update(pids)
        else:
            raise MachineSyntaxError(f"unknown keyword {fields[0]!r}", line_no)
    if name is None:
        raise MachineSyntaxError("missing 'machine <name>' line", 1)
    try:
        return MachineDescription(name, pipelines, op_map)
    except ValueError as exc:
        raise ValueError(f"invalid machine {name!r}: {exc}") from None


def load_machine(path) -> MachineDescription:
    """Read a machine description from a file path."""
    with open(path) as fh:
        return parse_machine(fh.read())


def save_machine(machine: MachineDescription, path) -> None:
    """Write ``machine`` to a file path in the table format."""
    with open(path, "w") as fh:
        fh.write(format_machine(machine))
