"""Pipeline descriptions.

Section 2.1 of the paper identifies the two parameters the compiler must
know per pipeline:

* **latency** — clock ticks between enqueuing an operation and its result
  becoming available (the minimum issue distance between a producer and a
  dependent consumer);
* **enqueue time** — the minimum clock ticks between enqueuing two
  operations into the *same* pipeline (conflict delay).

A classical pipeline has enqueue time 1; a non-pipelined functional unit
that can overlap with other units is modelled by ``enqueue_time ==
latency`` (section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PipelineDesc:
    """One row of a pipeline description table (paper Tables 2 and 4)."""

    function: str
    ident: int
    latency: int
    enqueue_time: int

    def __post_init__(self) -> None:
        if self.ident < 1:
            raise ValueError("pipeline identifiers start at 1")
        if self.latency < 1:
            raise ValueError("pipeline latency must be at least 1 clock tick")
        if self.enqueue_time < 1:
            raise ValueError("pipeline enqueue time must be at least 1 clock tick")
        if self.enqueue_time > self.latency:
            # An operation's result is available after `latency`; a unit
            # cannot remain busier accepting work than producing results
            # in this model (enqueue == latency is the unpipelined case).
            raise ValueError(
                "enqueue time cannot exceed latency "
                f"({self.enqueue_time} > {self.latency})"
            )

    @property
    def is_pipelined(self) -> bool:
        """False for a functional unit modelled as enqueue_time == latency."""
        return self.enqueue_time < self.latency

    def __str__(self) -> str:
        return (
            f"pipeline {self.ident} ({self.function}): "
            f"latency={self.latency}, enqueue={self.enqueue_time}"
        )
