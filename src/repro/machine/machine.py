"""Machine descriptions: pipelines plus the operation-to-pipeline mapping.

Section 4.1: a machine is described by two tables — the pipeline
description table (function, identifier, latency, enqueue time) and the
operation-to-pipeline mapping, which associates each operation type with
the *set* of pipelines able to execute it.

Operations mapped to the empty set (``Add`` on the paper's simulation
machine, ``Store`` and ``Const`` everywhere) execute without any pipeline
resource: they cause no enqueue conflicts and their results are available
on the next clock tick (effective latency 1) — exactly step [2] of the
NOP-insertion algorithm, which skips the conflict check when
``sigma(zeta)`` is empty.

The scheduling algorithm of section 4.2 "does not support" choosing among
several pipelines for one operation (footnote 3), so the core scheduler
requires a *deterministic* machine: at most one pipeline per operation
type.  :meth:`MachineDescription.fixed_assignment` converts a
multi-pipeline machine into a deterministic view by round-robin
pre-assignment; the extension scheduler in ``repro.sched.multi`` searches
over the assignment instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Optional, Tuple

from ..ir.ops import Opcode
from .pipeline import PipelineDesc

#: Effective latency of operations that use no pipeline: the result is
#: available on the next clock tick.
UNPIPELINED_LATENCY = 1


class MachineValidationError(ValueError):
    """Raised when a machine description is internally inconsistent.

    ``field`` names the offending entry when the error was raised against
    structured input (e.g. ``"pipelines[2].latency"`` for a machine built
    from a dict/JSON payload), so callers can point users at the exact
    datum instead of echoing a whole description.  ``None`` when the
    inconsistency is not attributable to a single field.
    """

    def __init__(self, message: str, field: Optional[str] = None):
        super().__init__(message if field is None else f"{field}: {message}")
        self.field = field


@dataclass(frozen=True)
class MachineDescription:
    """A pipelined target machine (paper Tables 2+3 or 4+5).

    Parameters
    ----------
    name:
        Human-readable label.
    pipelines:
        The pipeline description table.
    op_map:
        Operation-to-pipeline-set mapping.  Operations absent from the
        mapping use no pipeline (the empty set).
    """

    name: str
    pipelines: Tuple[PipelineDesc, ...]
    op_map: Mapping[Opcode, FrozenSet[int]]

    def __init__(
        self,
        name: str,
        pipelines: Iterable[PipelineDesc],
        op_map: Mapping[Opcode, Iterable[int]],
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "pipelines", tuple(pipelines))
        object.__setattr__(
            self,
            "op_map",
            # Empty sets are normalized away: "not mapped" and "mapped to
            # no pipeline" mean the same thing and must compare equal.
            {
                op: frozenset(pids)
                for op, pids in op_map.items()
                if frozenset(pids)
            },
        )
        object.__setattr__(
            self, "_by_ident", {p.ident: p for p in self.pipelines}
        )
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if len(self._by_ident) != len(self.pipelines):
            raise MachineValidationError("duplicate pipeline identifiers")
        for op, pids in self.op_map.items():
            for pid in pids:
                if pid not in self._by_ident:
                    raise MachineValidationError(
                        f"operation {op.value} mapped to unknown pipeline {pid}"
                    )

    # ------------------------------------------------------------------
    # Pipeline lookups
    # ------------------------------------------------------------------
    def pipeline(self, ident: int) -> PipelineDesc:
        try:
            return self._by_ident[ident]
        except KeyError:
            raise KeyError(f"machine {self.name} has no pipeline {ident}") from None

    def pipelines_for(self, op: Opcode) -> FrozenSet[int]:
        """The set of pipeline identifiers able to execute ``op``
        (sigma choices); empty when the operation uses no pipeline."""
        return self.op_map.get(op, frozenset())

    def sigma(self, op: Opcode) -> Optional[int]:
        """Definition 3 for deterministic machines — *the* pipeline used
        by ``op``, or ``None`` for unpipelined operations.

        Raises for operations with more than one viable pipeline: the
        core section-4.2 algorithm does not choose among pipelines
        (footnote 3); use :meth:`fixed_assignment` or the
        ``repro.sched.multi`` extension for those machines.
        """
        choices = self.pipelines_for(op)
        if not choices:
            return None
        if len(choices) > 1:
            raise MachineValidationError(
                f"operation {op.value} maps to pipelines "
                f"{sorted(choices)} on {self.name}; the core scheduler "
                "requires a deterministic machine (see fixed_assignment())"
            )
        return next(iter(choices))

    @property
    def is_deterministic(self) -> bool:
        """True when every operation maps to at most one pipeline."""
        return all(len(pids) <= 1 for pids in self.op_map.values())

    def latency_of(self, op: Opcode, pipeline_ident: Optional[int] = None) -> int:
        """Result latency of ``op`` (on ``pipeline_ident`` when given)."""
        if pipeline_ident is None:
            pipeline_ident = self.sigma(op)
        if pipeline_ident is None:
            return UNPIPELINED_LATENCY
        return self.pipeline(pipeline_ident).latency

    def enqueue_time_of(self, op: Opcode, pipeline_ident: Optional[int] = None) -> int:
        if pipeline_ident is None:
            pipeline_ident = self.sigma(op)
        if pipeline_ident is None:
            return 0
        return self.pipeline(pipeline_ident).enqueue_time

    # ------------------------------------------------------------------
    # Multi-pipeline support
    # ------------------------------------------------------------------
    def fixed_assignment(self) -> "MachineDescription":
        """A deterministic view of this machine.

        Operations with several viable pipelines are pinned to the
        lowest-numbered one.  This is the conservative baseline that the
        multi-pipeline extension scheduler is compared against: it throws
        away the hardware parallelism among same-function pipelines, just
        as a compiler ignorant of the choice would.
        """
        if self.is_deterministic:
            return self
        pinned = {
            op: frozenset([min(pids)]) if pids else frozenset()
            for op, pids in self.op_map.items()
        }
        return MachineDescription(f"{self.name}[pinned]", self.pipelines, pinned)

    @property
    def max_latency(self) -> int:
        return max((p.latency for p in self.pipelines), default=UNPIPELINED_LATENCY)

    @property
    def max_enqueue_time(self) -> int:
        return max((p.enqueue_time for p in self.pipelines), default=0)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Render both tables in the paper's format."""
        lines = [f"Machine: {self.name}", "Pipeline description table:"]
        lines.append("  function      id  latency  enqueue")
        for p in self.pipelines:
            lines.append(
                f"  {p.function:<12}  {p.ident:>2}  {p.latency:>7}  {p.enqueue_time:>7}"
            )
        lines.append("Operation-to-pipeline mapping:")
        for op in Opcode:
            pids = self.pipelines_for(op)
            rendered = "{" + ", ".join(str(i) for i in sorted(pids)) + "}"
            lines.append(f"  {op.value:<6} -> {rendered if pids else '{}'}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"MachineDescription({self.name!r}, {len(self.pipelines)} pipelines)"
