"""Preset machine descriptions.

Two come straight from the paper:

* :func:`paper_example_machine` — Tables 2 and 3: two loaders, two
  adders, one multiplier, with ``Add``/``Sub`` sharing the adder pair and
  ``Mul``/``Div`` sharing the multiplier.  Not deterministic — this is the
  machine that motivates the multi-pipeline extension.
* :func:`paper_simulation_machine` — Tables 4 and 5: the machine every
  result in section 5 was produced on.  One loader (latency 2, enqueue 1)
  and one multiplier (latency 4, enqueue 2); Table 5 is not legible in the
  scan, so the mapping follows the text's conventions: ``Load`` uses the
  loader, ``Mul``/``Div`` use the multiplier, and everything else
  (``Add``, ``Sub``, ``Const``, ``Store``, ``Copy``, ``Neg``) executes
  unpipelined in a single cycle — consistent with both the worked examples
  of section 2.1 and the remark that Stores "typically do not interfere
  with any pipelined operations".

The remaining presets exercise the model's generality (section 6: "our
model allows multiple pipelines, each with its own latency and enqueue
time"): a deep-memory machine, a fully unpipelined multi-unit machine, and
a scalar single-pipe machine used as a degenerate case in tests.
"""

from __future__ import annotations

from ..ir.ops import Opcode
from .machine import MachineDescription
from .pipeline import PipelineDesc


def paper_example_machine() -> MachineDescription:
    """Tables 2 and 3: the five-pipeline example machine."""
    return MachineDescription(
        name="paper-example",
        pipelines=[
            PipelineDesc("loader", 1, latency=2, enqueue_time=1),
            PipelineDesc("loader", 2, latency=2, enqueue_time=1),
            PipelineDesc("adder", 3, latency=4, enqueue_time=3),
            PipelineDesc("adder", 4, latency=4, enqueue_time=3),
            PipelineDesc("multiplier", 5, latency=4, enqueue_time=2),
        ],
        op_map={
            Opcode.LOAD: {1, 2},
            Opcode.ADD: {3, 4},
            Opcode.SUB: {3, 4},
            Opcode.MUL: {5},
            Opcode.DIV: {5},
        },
    )


def paper_simulation_machine() -> MachineDescription:
    """Tables 4 and 5: the machine used for all of the paper's results."""
    return MachineDescription(
        name="paper-simulation",
        pipelines=[
            PipelineDesc("loader", 1, latency=2, enqueue_time=1),
            PipelineDesc("multiplier", 2, latency=4, enqueue_time=2),
        ],
        op_map={
            Opcode.LOAD: {1},
            Opcode.MUL: {2},
            Opcode.DIV: {2},
        },
    )


def deep_memory_machine() -> MachineDescription:
    """A machine with a long-latency memory pipe and pipelined ALUs.

    Models the "global memory accesses using an interconnection network"
    flavour of machine the paper cites (CARP): memory results take 8
    ticks, arithmetic runs in dedicated pipes.  Deterministic.
    """
    return MachineDescription(
        name="deep-memory",
        pipelines=[
            PipelineDesc("loader", 1, latency=8, enqueue_time=1),
            PipelineDesc("adder", 2, latency=3, enqueue_time=1),
            PipelineDesc("multiplier", 3, latency=6, enqueue_time=2),
        ],
        op_map={
            Opcode.LOAD: {1},
            Opcode.ADD: {2},
            Opcode.SUB: {2},
            Opcode.MUL: {3},
            Opcode.DIV: {3},
        },
    )


def unpipelined_units_machine() -> MachineDescription:
    """Parallel functional units with no internal pipelining.

    Section 2.1: units that overlap with other units but are not
    internally pipelined are modelled as pipelines with
    ``enqueue_time == latency``.
    """
    return MachineDescription(
        name="unpipelined-units",
        pipelines=[
            PipelineDesc("loader", 1, latency=3, enqueue_time=3),
            PipelineDesc("adder", 2, latency=2, enqueue_time=2),
            PipelineDesc("multiplier", 3, latency=5, enqueue_time=5),
        ],
        op_map={
            Opcode.LOAD: {1},
            Opcode.ADD: {2},
            Opcode.SUB: {2},
            Opcode.MUL: {3},
            Opcode.DIV: {3},
        },
    )


def asymmetric_units_machine() -> MachineDescription:
    """Same-class functional units with *different* timings.

    One fast non-pipelined multiplier next to a slow pipelined one, and
    two unequal adders: here the pipeline *choice* genuinely matters
    (unlike identical twins, where an optimal order can compensate for
    any static spreading policy).  Exercises the multi-pipeline
    selection extension (DESIGN.md X1).
    """
    return MachineDescription(
        name="asymmetric-units",
        pipelines=[
            PipelineDesc("loader", 1, latency=2, enqueue_time=1),
            PipelineDesc("adder-fast", 2, latency=1, enqueue_time=1),
            PipelineDesc("adder-slow", 3, latency=3, enqueue_time=1),
            PipelineDesc("mul-fast", 4, latency=3, enqueue_time=3),
            PipelineDesc("mul-slow", 5, latency=6, enqueue_time=2),
        ],
        op_map={
            Opcode.LOAD: {1},
            Opcode.ADD: {2, 3},
            Opcode.SUB: {2, 3},
            Opcode.MUL: {4, 5},
            Opcode.DIV: {4, 5},
        },
    )


def scalar_machine() -> MachineDescription:
    """Degenerate single-pipe machine where every value op has latency 1.

    Any legal order of a block needs zero NOPs here; tests use it to
    isolate dependence handling from timing.
    """
    return MachineDescription(
        name="scalar",
        pipelines=[PipelineDesc("alu", 1, latency=1, enqueue_time=1)],
        op_map={
            Opcode.LOAD: {1},
            Opcode.ADD: {1},
            Opcode.SUB: {1},
            Opcode.MUL: {1},
            Opcode.DIV: {1},
        },
    )


#: Registry of named presets for CLIs and experiments.
PRESETS = {
    "paper-example": paper_example_machine,
    "paper-simulation": paper_simulation_machine,
    "deep-memory": deep_memory_machine,
    "unpipelined-units": unpipelined_units_machine,
    "asymmetric-units": asymmetric_units_machine,
    "scalar": scalar_machine,
}


def get_machine(name: str) -> MachineDescription:
    """Look a preset machine up by name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown machine {name!r} (known: {known})") from None
    return factory()
