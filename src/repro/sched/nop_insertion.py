"""NOP insertion — the paper's Ω procedure (section 4.2.2).

Given a machine description and a (partial) schedule, compute ``eta(i)``,
the minimum number of NOPs which must be inserted immediately before the
i-th instruction so that no pipeline conflict (enqueue-time violation) or
dependence (latency violation) remains.

Timing model
------------
Instructions issue one per clock tick, plus their leading NOPs.  With
``eta(k)`` NOPs before the k-th instruction, issue times are::

    t(0) = eta(0)              (0 on an idle machine; carry-in conditions
                                from a preceding block can delay it)
    t(i) = t(i-1) + 1 + eta(i)

The paper's ``tau(j)`` — "the execution time between the start of the
j-th instruction and the i-th instruction" — is then::

    tau(j) = t(i) - t(j) = (i - j) + eta(i) + sum(eta(j+1..i-1))

(The scan of the paper typesets the ``i - j`` term lossily; our form
reduces to the printed ``eta(i) + 1`` at the adjacent case ``j = i-1``
and is validated against the cycle-accurate simulator.)

Constraints on the issue time of instruction ``zeta`` at position ``i``:

* **conflict** (steps [2]-[3]): if ``sigma(zeta)`` is a pipeline ``p``,
  then ``t(i) >= t(j) + enqueue_time(p)`` for the nearest earlier
  instruction ``j`` with ``sigma(j) == p``;
* **dependence** (steps [4]-[6]): for every ``delta`` in ``rho(zeta)``,
  ``t(i) >= t(delta) + latency(sigma(delta))``, where unpipelined
  producers have effective latency 1.

Two implementations are provided and property-tested equal:

* :func:`sequential_etas` — the paper's literal formulation, which adds
  NOP deficits one constraint at a time, re-evaluating ``tau`` as
  ``eta(i)`` grows;
* the closed form used everywhere else — since each step tops ``eta(i)``
  up to exactly satisfy one constraint and all constraints relax together
  as ``eta(i)`` grows, the result is simply the maximum single-constraint
  deficit.

:class:`IncrementalTimingState` exposes the closed form as an O(preds)
push/pop interface for the branch-and-bound search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.dag import DependenceDAG
from ..machine.machine import UNPIPELINED_LATENCY, MachineDescription

#: Optional per-tuple pipeline assignment (for the multi-pipeline
#: extension): maps tuple reference numbers to pipeline identifiers.
PipelineAssignment = Mapping[int, Optional[int]]


@dataclass(frozen=True)
class InitialConditions:
    """Carry-in state from preceding blocks (paper footnote 1).

    Cycle 0 is the block's first issue slot.

    Parameters
    ----------
    pipe_free:
        Earliest cycle at which each pipeline accepts a new enqueue
        (pipelines absent are free immediately).  Captures operations
        issued near the end of the previous block that keep their
        pipeline busy across the boundary.
    variable_ready:
        Earliest cycle at which each named variable may be touched
        (loaded *or* stored).  Captures stores still completing in a
        slow memory system when the block begins.
    """

    pipe_free: Mapping[int, int] = None
    variable_ready: Mapping[str, int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "pipe_free", dict(self.pipe_free or {}))
        object.__setattr__(
            self, "variable_ready", dict(self.variable_ready or {})
        )
        for label, table in (
            ("pipe_free", self.pipe_free),
            ("variable_ready", self.variable_ready),
        ):
            if any(v < 0 for v in table.values()):
                raise ValueError(f"{label} cycles must be non-negative")

    @property
    def is_trivial(self) -> bool:
        return not self.pipe_free and not self.variable_ready

    def __str__(self) -> str:
        return (
            f"InitialConditions(pipe_free={self.pipe_free}, "
            f"variable_ready={self.variable_ready})"
        )


class SigmaResolver:
    """Resolves Definition 3 — the pipeline used by each instruction.

    For deterministic machines this is a pure function of the opcode; the
    multi-pipeline extension passes an explicit per-tuple ``assignment``.
    Resolution is precomputed per tuple so the search's inner loop does
    dictionary lookups only.
    """

    def __init__(
        self,
        dag: DependenceDAG,
        machine: MachineDescription,
        assignment: Optional[PipelineAssignment] = None,
    ):
        self.dag = dag
        self.machine = machine
        self._sigma: Dict[int, Optional[int]] = {}
        self._latency: Dict[int, int] = {}
        self._enqueue: Dict[int, int] = {}
        for t in dag.block:
            if assignment is not None and t.ident in assignment:
                pid = assignment[t.ident]
                if pid is not None and pid not in {
                    p.ident for p in machine.pipelines
                }:
                    raise ValueError(
                        f"assignment maps tuple {t.ident} to unknown pipeline {pid}"
                    )
                if pid is not None:
                    viable = machine.pipelines_for(t.op)
                    if pid not in viable:
                        raise ValueError(
                            f"pipeline {pid} cannot execute {t.op.value} "
                            f"(viable: {sorted(viable)})"
                        )
            else:
                pid = machine.sigma(t.op)
            self._sigma[t.ident] = pid
            if pid is None:
                self._latency[t.ident] = UNPIPELINED_LATENCY
                self._enqueue[t.ident] = 0
            else:
                pipe = machine.pipeline(pid)
                self._latency[t.ident] = pipe.latency
                self._enqueue[t.ident] = pipe.enqueue_time

    def sigma(self, ident: int) -> Optional[int]:
        return self._sigma[ident]

    def latency(self, ident: int) -> int:
        """Result latency of the tuple numbered ``ident``."""
        return self._latency[ident]

    def enqueue_time(self, ident: int) -> int:
        return self._enqueue[ident]


@dataclass(frozen=True)
class ScheduleTiming:
    """Complete timing of one schedule: the output of Ω over a full order."""

    order: Tuple[int, ...]
    etas: Tuple[int, ...]
    issue_times: Tuple[int, ...]

    @property
    def total_nops(self) -> int:
        """mu(Pi) — Definition 5."""
        return sum(self.etas)

    @property
    def issue_span_cycles(self) -> int:
        """Cycles from the first issue to the last issue, inclusive:
        ``len(order) + total_nops``."""
        return len(self.order) + self.total_nops

    def eta_of(self, ident: int) -> int:
        return self.etas[self.order.index(ident)]

    def __len__(self) -> int:
        return len(self.order)


class IncrementalTimingState:
    """Push/pop NOP computation over a growing schedule prefix (Φ).

    The branch-and-bound search extends and retracts partial schedules
    millions of times; this class keeps the per-pipeline last-issue times
    and per-tuple issue times so that each extension costs
    ``O(|rho(zeta)|)``.
    """

    __slots__ = (
        "resolver",
        "dag",
        "_order",
        "_etas",
        "_issue",
        "_pipe_last",
        "_pipe_saved",
        "_total_nops",
        "_var_bound",
    )

    def __init__(
        self,
        dag: DependenceDAG,
        resolver: SigmaResolver,
        initial: Optional[InitialConditions] = None,
    ):
        self.dag = dag
        self.resolver = resolver
        self._order: List[int] = []
        self._etas: List[int] = []
        self._issue: Dict[int, int] = {}
        self._pipe_last: Dict[int, int] = {}
        # Stack of (pipe, previous last-issue or None) for undo.
        self._pipe_saved: List[Optional[Tuple[int, Optional[int]]]] = []
        self._total_nops = 0
        # Per-tuple earliest issue cycle from the carry-in conditions.
        self._var_bound: Dict[int, int] = {}
        if initial is not None and not initial.is_trivial:
            # A pipeline busy until cycle c behaves exactly like a
            # phantom enqueue at c - enqueue_time: seed _pipe_last so the
            # ordinary conflict rule enforces the carry-in.
            for pid, free_at in initial.pipe_free.items():
                enqueue = resolver.machine.pipeline(pid).enqueue_time
                self._pipe_last[pid] = free_at - enqueue
            for t in dag.block:
                var = t.variable
                if var is not None and var in initial.variable_ready:
                    self._var_bound[t.ident] = initial.variable_ready[var]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    @property
    def order(self) -> Tuple[int, ...]:
        return tuple(self._order)

    @property
    def etas(self) -> Tuple[int, ...]:
        return tuple(self._etas)

    @property
    def total_nops(self) -> int:
        """mu(Φ) — NOPs committed by the current prefix."""
        return self._total_nops

    def issue_time_of(self, ident: int) -> int:
        return self._issue[ident]

    # ------------------------------------------------------------------
    def peek_eta(self, ident: int) -> int:
        """The NOPs that scheduling ``ident`` next would require.

        This is the Ω evaluation: one call per candidate considered.
        Assumes legality (all of ``rho(ident)`` already scheduled).
        """
        resolver = self.resolver
        # Issue time with eta == 0: the slot after the previous issue,
        # or cycle 0 at the start of the block.
        base = self._issue[self._order[-1]] + 1 if self._order else 0
        earliest = base
        # Conflict: nearest earlier enqueue into the same pipeline
        # (including the phantom carry-in enqueue, when present).
        pid = resolver.sigma(ident)
        if pid is not None:
            last = self._pipe_last.get(pid)
            if last is not None:
                bound = last + resolver.enqueue_time(ident)
                if bound > earliest:
                    earliest = bound
        # Carry-in memory readiness.
        if self._var_bound:
            bound = self._var_bound.get(ident)
            if bound is not None and bound > earliest:
                earliest = bound
        # Dependences: producer issue + producer latency.
        for delta in self.dag.rho(ident):
            bound = self._issue[delta] + resolver.latency(delta)
            if bound > earliest:
                earliest = bound
        return earliest - base

    def push(self, ident: int) -> int:
        """Schedule ``ident`` next; returns its eta."""
        eta = self.peek_eta(ident)
        if self._order:
            issue = self._issue[self._order[-1]] + 1 + eta
        else:
            issue = eta  # carry-in conditions can delay the first issue
        self._order.append(ident)
        self._etas.append(eta)
        self._issue[ident] = issue
        self._total_nops += eta
        pid = self.resolver.sigma(ident)
        if pid is None:
            self._pipe_saved.append(None)
        else:
            self._pipe_saved.append((pid, self._pipe_last.get(pid)))
            self._pipe_last[pid] = issue
        return eta

    def pop(self) -> int:
        """Undo the most recent :meth:`push`; returns the retracted ident."""
        ident = self._order.pop()
        eta = self._etas.pop()
        self._total_nops -= eta
        del self._issue[ident]
        saved = self._pipe_saved.pop()
        if saved is not None:
            pid, previous = saved
            if previous is None:
                del self._pipe_last[pid]
            else:
                self._pipe_last[pid] = previous
        return ident

    def snapshot(self) -> ScheduleTiming:
        """Freeze the current (complete or partial) timing."""
        return ScheduleTiming(
            tuple(self._order),
            tuple(self._etas),
            tuple(self._issue[i] for i in self._order),
        )


# ----------------------------------------------------------------------
# Whole-schedule entry points
# ----------------------------------------------------------------------
def compute_timing(
    dag: DependenceDAG,
    order: Sequence[int],
    machine: MachineDescription,
    assignment: Optional[PipelineAssignment] = None,
    check_legality: bool = True,
    initial: Optional[InitialConditions] = None,
) -> ScheduleTiming:
    """Run Ω over a complete schedule and return its timing.

    Raises ``ValueError`` when ``order`` violates the dependence DAG
    (unless ``check_legality=False``, for callers that already know).
    ``initial`` supplies carry-in conditions from preceding blocks
    (footnote 1); by default the machine starts idle.
    """
    if check_legality and not dag.is_legal_order(order):
        raise ValueError("order is not a legal (dependence-respecting) schedule")
    resolver = SigmaResolver(dag, machine, assignment)
    state = IncrementalTimingState(dag, resolver, initial)
    for ident in order:
        state.push(ident)
    return state.snapshot()


def sequential_etas(
    dag: DependenceDAG,
    order: Sequence[int],
    machine: MachineDescription,
    assignment: Optional[PipelineAssignment] = None,
    initial: Optional[InitialConditions] = None,
) -> Tuple[int, ...]:
    """The paper's NOP-insertion algorithm, implemented step by step.

    Kept deliberately close to the prose of section 4.2.2 (steps [1]-[6]),
    including the backward conflict scan and the incremental deficit
    accumulation.  Used as the oracle against which the closed form is
    property-tested; O(n^2) per schedule, so not used by the search.

    Carry-in conditions (footnote 1) extend the literal algorithm with a
    step [0]: before the in-block checks, top eta up until the carry-in
    pipeline-busy and variable-ready constraints are met — for the first
    instruction too, which the idle-start algorithm exempts in step [1].
    """
    resolver = SigmaResolver(dag, machine, assignment)
    init = initial if initial is not None else InitialConditions()
    n = len(order)
    etas: List[int] = [0] * n
    position = {ident: pos for pos, ident in enumerate(order)}

    for i, zeta in enumerate(order):
        eta = 0  # step [1]

        def issue_i() -> int:
            """Issue cycle of instruction i given etas so far + current eta."""
            return sum(etas[:i]) + i + eta

        # Step [0]: carry-in conditions (no-op when the machine starts idle).
        pid = resolver.sigma(zeta)
        if pid is not None and pid in init.pipe_free:
            x = init.pipe_free[pid] - issue_i()
            if x > 0:
                eta += x
        var = dag.block.by_ident(zeta).variable
        if var is not None and var in init.variable_ready:
            x = init.variable_ready[var] - issue_i()
            if x > 0:
                eta += x

        if i == 0:
            etas[0] = eta
            continue

        def tau(j: int) -> int:
            """Issue-time distance between instructions j and i (current eta)."""
            return (i - j) + eta + sum(etas[j + 1 : i])

        if pid is not None:  # step [2] skips to [4] when sigma is empty
            enqueue = resolver.enqueue_time(zeta)
            j = i - 1
            while True:  # step [3]
                if tau(j) > enqueue:
                    break
                if resolver.sigma(order[j]) == pid:
                    if tau(j) < enqueue:
                        # The paper assigns eta = enqueue - tau(j); since
                        # its eta is still 0 here that equals adding the
                        # deficit.  Adding keeps the step correct when
                        # step [0] already raised eta for carry-in.
                        eta += enqueue - tau(j)
                    break
                if j == 0:
                    break
                j -= 1

        rho = dag.rho(zeta)
        if rho:  # steps [4]-[6]
            for delta in sorted(rho, key=position.__getitem__):
                x = resolver.latency(delta) - tau(position[delta])
                if x > 0:
                    eta += x

        etas[i] = eta

    return tuple(etas)


def total_nops(
    dag: DependenceDAG,
    order: Sequence[int],
    machine: MachineDescription,
    assignment: Optional[PipelineAssignment] = None,
) -> int:
    """mu(Pi) for a complete schedule — convenience wrapper."""
    return compute_timing(dag, order, machine, assignment).total_nops
