"""The list scheduler used to seed the optimal search (section 3.2).

The paper adopts the heuristic of [ZaD90]: *"the heuristic arranges the
tuples into a sequential order (schedule) so that the distance between
each instruction and the instructions that depend on it is as large as
possible"* — and notes (section 4.1) that the list scheduler does **not**
examine the pipeline tables, so the seed is machine-independent.

We realize the distance-maximizing aim with ready-list scheduling under an
oldest-producers-first priority:

1. maintain the set of *ready* tuples (all DAG predecessors scheduled);
2. repeatedly emit the ready tuple whose most recently scheduled
   predecessor lies furthest back in the order (roots count as infinitely
   far) — picking the candidate with the *stalest* producers is exactly
   what stretches every producer-to-consumer distance;
3. break ties by height (longest dependence path below — its consumers
   are still waiting to be distanced), then descendant count, then
   program order (determinism).

Between a producer and its consumer this interleaves every independent
tuple that can legally go there, which is precisely what hides pipeline
latency.  Because the seed's only role is to give the alpha-beta pruning a
good initial bound, any reasonable priority works; the ablation experiment
(``repro.experiments.ablation``) quantifies how much this seed buys over
program order.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..ir.dag import DependenceDAG


def list_schedule(dag: DependenceDAG) -> Tuple[int, ...]:
    """Machine-independent seed schedule maximizing dependence distances."""
    heights = dag.heights
    descendants = dag.descendants
    position = dag.block.position_of
    scheduled_at: Dict[int, int] = {}

    def priority(ident: int):
        preds = dag.rho(ident)
        # Distance to the *nearest* (most recently issued) producer;
        # larger is better, so negate for min-sort.  Roots are unbounded.
        if preds:
            nearest = max(scheduled_at[p] for p in preds)
            distance = len(scheduled_at) - nearest
        else:
            distance = math.inf
        return (
            -distance,
            -heights[ident],
            -len(descendants[ident]),
            position(ident),
        )

    indegree = {i: len(dag.rho(i)) for i in dag.idents}
    ready: List[int] = [i for i in dag.idents if indegree[i] == 0]
    order: List[int] = []
    while ready:
        ready.sort(key=priority)
        chosen = ready.pop(0)
        scheduled_at[chosen] = len(order)
        order.append(chosen)
        for succ in dag.successors(chosen):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(dag):
        raise AssertionError("dependence DAG contains a cycle")  # pragma: no cover
    return tuple(order)


def program_order(dag: DependenceDAG) -> Tuple[int, ...]:
    """The identity schedule — the front end's emission order.

    Used as the unseeded baseline in ablations: traditional on-demand
    code generation, which the paper notes "results in code sequences
    which have many such dependences".
    """
    return dag.idents
