"""Heuristic pipeline schedulers — the literature baselines.

The paper positions itself against two families of prior work:

* **Gross [Gro83]** — a postpass list scheduler that is *pipeline-aware*:
  at each step it issues a ready instruction that the current pipeline
  state accepts with the least stalling, using dependence height to break
  ties.  "Although his heuristic typically does not result in the minimum
  delay (optimal schedule), the algorithm executes quickly and generally
  yields good results."
* **Abraham et al. [AbP88]** — permits variable-delay pipelines but
  "resorted to a greedy heuristic algorithm": pure earliest-issue greed
  with no lookahead beyond the immediate stall count.

Both are implemented on the same machinery as the optimal search (the
incremental Ω state), so NOP counts are directly comparable.  Neither is
optimal; the benchmark harness measures how far from optimal they land.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from .nop_insertion import (
    IncrementalTimingState,
    InitialConditions,
    PipelineAssignment,
    ScheduleTiming,
    SigmaResolver,
)


def gross_schedule(
    dag: DependenceDAG,
    machine: MachineDescription,
    assignment: Optional[PipelineAssignment] = None,
    initial: Optional[InitialConditions] = None,
) -> ScheduleTiming:
    """Gross-style pipeline-aware list scheduling.

    Greedy on immediate NOP cost, with dependence height as the primary
    tie-break (prefer instructions on the critical path) and descendant
    count second.  One-step lookahead only.
    """
    return _greedy(dag, machine, assignment, initial, height_tiebreak=True)


def greedy_schedule(
    dag: DependenceDAG,
    machine: MachineDescription,
    assignment: Optional[PipelineAssignment] = None,
    initial: Optional[InitialConditions] = None,
) -> ScheduleTiming:
    """Abraham-et-al-style plain greedy: least immediate stall, program
    order as the only tie-break."""
    return _greedy(dag, machine, assignment, initial, height_tiebreak=False)


def _greedy(
    dag: DependenceDAG,
    machine: MachineDescription,
    assignment: Optional[PipelineAssignment],
    initial: Optional[InitialConditions],
    height_tiebreak: bool,
) -> ScheduleTiming:
    resolver = SigmaResolver(dag, machine, assignment)
    state = IncrementalTimingState(dag, resolver, initial)
    heights = dag.heights
    descendants = dag.descendants
    position = dag.block.position_of

    indegree = {i: len(dag.rho(i)) for i in dag.idents}
    ready: List[int] = [i for i in dag.idents if indegree[i] == 0]

    while ready:
        best = None
        best_key = None
        for ident in ready:
            eta = state.peek_eta(ident)
            if height_tiebreak:
                key = (eta, -heights[ident], -len(descendants[ident]), position(ident))
            else:
                key = (eta, position(ident))
            if best_key is None or key < best_key:
                best, best_key = ident, key
        ready.remove(best)
        state.push(best)
        for succ in dag.successors(best):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)

    return state.snapshot()
