"""Flattened hot core of the branch-and-bound searches.

The recursive reference formulations in :mod:`repro.sched.search` and
:mod:`repro.sched.splitting` are written for readability: frozen
dataclasses, per-node dict/set churn, ``IncrementalTimingState`` method
calls, recursion.  This module runs the *same* searches on a flattened
representation:

* the DAG and machine are lowered once per block into packed integer
  arrays — predecessor/successor sets as bitmask ints, latency/enqueue/
  pipeline tables as flat lists indexed by dense instruction index
  (position in ``dag.idents``, so masks are bit-for-bit the ones the
  reference engine keys its memo on);
* the ready set is a single int mask, iterated lowest-bit-first;
* the recursive ``rec()`` becomes an explicit stack of candidate frames
  with in-place do/undo of the timing state (order/etas/issue arrays, a
  per-pipeline last-issue list with an undo stack);
* the dominance memo is keyed on small int tuples built from the same
  quantities.

Do/undo invariants
------------------
Every push of instruction ``k`` appends to ``order``/``etas``, writes
``issue[k]``, adds to the running NOP total and saves the clobbered
per-pipeline last-issue on a stack; the matching undo pops them in
reverse.  A node's candidate list (and each candidate's η) is computed
once, at node entry: between two sibling candidates the state is fully
restored, so the cached η equals what the reference recomputes at push
time.  Candidate sort keys include the unique seed position, so the
sorted order never depends on ready-list mutation order.

Bit-for-bit equality
--------------------
All five prunes (legality, equivalence, α-β, lower bounds, dominance),
the curtail/time-limit semantics, the register-pressure budget, the
carry-in conditions and the Ω-call accounting follow the reference
control flow exactly, in the same order; dense relabeling is a bijection
on instructions and pipelines, so every memo/equivalence key equality
class — hence every prune decision and count — is preserved.  The
differential tests in ``tests/test_hot_core.py`` and the
``repro-verify`` oracle hold the two engines to byte-identical
``SearchResult``/``SplitScheduleResult`` contents (everything except
wall time).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from operator import itemgetter
from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from ..telemetry import prune_counts
from .nop_insertion import (
    InitialConditions,
    ScheduleTiming,
    SigmaResolver,
)

try:  # optional: the vector engine falls back to "fast" without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

__all__ = [
    "FastOutcome",
    "run_fast_search",
    "run_fast_split",
    "run_vector_search",
    "run_vector_split",
    "run_native_search",
    "run_native_split",
    "numpy_available",
    "resolve_engine",
    "warn_native_fallback",
    "VECTOR_MIN_FRONTIER",
]

#: Ready sets narrower than this are scored with the scalar loop even
#: under ``engine="vector"``: one fused NumPy pass costs a few µs of
#: dispatch, which only amortizes once a node offers enough candidates.
#: The paper population averages ~1-2 ready instructions per node, so
#: the batch kernels engage on wide frontiers (splitting windows,
#: adversarial wide blocks), not on every node.
VECTOR_MIN_FRONTIER = 32

#: Sentinel for "pipeline has no last issue": negative enough that
#: ``sentinel + enqueue_time`` can never win a max against a real issue
#: cycle (all real cycles are >= 0).
_PL_NONE = -(1 << 40)

_vector_fallback_warned = False
_native_fallback_warned = False


def numpy_available() -> bool:
    """Whether the NumPy batch kernels can run in this process."""
    return _np is not None


def warn_vector_fallback(reason: str = "numpy is not installed") -> None:
    """Print the one-line vector->fast fallback notice (once per process)."""
    global _vector_fallback_warned
    if not _vector_fallback_warned:
        _vector_fallback_warned = True
        print(
            f"repro: engine 'vector' unavailable ({reason}); "
            "falling back to 'fast' (results are bit-for-bit identical)",
            file=sys.stderr,
        )


def warn_native_fallback(reason: str) -> None:
    """Print the one-line native->fast fallback notice (once per process)."""
    global _native_fallback_warned
    if not _native_fallback_warned:
        _native_fallback_warned = True
        print(
            f"repro: engine 'native' unavailable ({reason}); "
            "falling back to 'fast' (results are bit-for-bit identical)",
            file=sys.stderr,
        )


def resolve_engine(engine: str, telemetry=None) -> str:
    """Map a requested engine onto one that can run in this process.

    ``"vector"`` degrades to ``"fast"`` when NumPy is absent and
    ``"native"`` degrades to ``"fast"`` when the C kernel cannot be
    compiled/loaded; everything else passes through.  Each degradation
    prints a one-line stderr notice once per process (population runs
    normalize the engine in the *parent*, so ``--workers N`` still warns
    exactly once total) and bumps the ``search.engine_fallbacks``
    counter when a telemetry registry is attached.  Safe to call in
    worker processes — all engines are bit-for-bit identical in every
    recorded field, so the substitution never changes results, only
    wall time.
    """
    if engine == "vector" and _np is None:
        warn_vector_fallback()
        if telemetry is not None:
            telemetry.count("search.engine_fallbacks")
        return "fast"
    if engine == "native":
        from ..native import native_available, unavailable_reason

        if not native_available():
            warn_native_fallback(unavailable_reason())
            if telemetry is not None:
                telemetry.count("search.engine_fallbacks")
            return "fast"
    return engine


@dataclass(frozen=True)
class FastOutcome:
    """What the fast DFS hands back to ``schedule_block``."""

    best: ScheduleTiming
    omega_calls: int
    improvements: int
    completed: bool
    timed_out: bool
    memo_evicted: int
    prune_counts: Mapping[str, int]


class _Flat:
    """Packed-array lowering of one (dag, machine, carry-in) triple.

    Dense instruction index = position in ``dag.idents``; dense pipeline
    index = rank of the pipeline ident in sorted order.  Both maps are
    bijections, so keys built from dense indices partition exactly like
    keys built from the original identifiers.
    """

    __slots__ = (
        "n", "idents", "index_of", "lat", "enq", "sig",
        "preds", "pred_mask", "succs", "succ_mask",
        "P", "pipe_enq", "pipe_last", "var_bound", "has_vb", "vb_items",
        "np_tables",
    )

    def __init__(
        self,
        dag: DependenceDAG,
        machine: MachineDescription,
        resolver: SigmaResolver,
        initial: Optional[InitialConditions],
    ) -> None:
        idents = dag.idents
        n = len(idents)
        index_of = {ident: k for k, ident in enumerate(idents)}
        self.n = n
        self.idents = idents
        self.index_of = index_of
        self.lat = [resolver.latency(i) for i in idents]
        self.enq = [resolver.enqueue_time(i) for i in idents]

        pipe_ids = sorted(p.ident for p in machine.pipelines)
        pidx = {pid: k for k, pid in enumerate(pipe_ids)}
        self.P = len(pipe_ids)
        self.pipe_enq = [
            machine.pipeline(pid).enqueue_time for pid in pipe_ids
        ]
        self.sig = [
            -1 if resolver.sigma(i) is None else pidx[resolver.sigma(i)]
            for i in idents
        ]

        self.preds = [
            tuple(index_of[p] for p in dag.rho(i)) for i in idents
        ]
        self.pred_mask = [
            sum(1 << p for p in ps) for ps in self.preds
        ]
        self.succs = [
            tuple(index_of[s] for s in dag.successors(i)) for i in idents
        ]
        self.succ_mask = [
            sum(1 << s for s in ss) for ss in self.succs
        ]

        # Carry-in conditions, exactly as IncrementalTimingState seeds
        # them: a pipeline busy until cycle c is a phantom enqueue at
        # c - enqueue_time (may be negative, hence the None sentinel),
        # and variable-ready cycles become per-instruction issue bounds.
        self.pipe_last: List[Optional[int]] = [None] * self.P
        self.var_bound: List[Optional[int]] = [None] * n
        if initial is not None and not initial.is_trivial:
            for pid, free_at in initial.pipe_free.items():
                enqueue = machine.pipeline(pid).enqueue_time
                self.pipe_last[pidx[pid]] = free_at - enqueue
            for t in dag.block:
                var = t.variable
                if var is not None and var in initial.variable_ready:
                    self.var_bound[index_of[t.ident]] = (
                        initial.variable_ready[var]
                    )
        self.vb_items = tuple(
            (k, b) for k, b in enumerate(self.var_bound) if b is not None
        )
        self.has_vb = bool(self.vb_items)
        #: Lazy NumPy mirrors of the static tables (vector engine only).
        self.np_tables: Optional[dict] = None


def _np_tables(flat: _Flat) -> dict:
    """NumPy mirrors of ``_Flat``'s static int tables, built on demand.

    Only the tables the batch kernels index with candidate arrays are
    mirrored; everything mutable (``pipe_last``, the incremental
    dependence constraints) stays in Python lists and is converted at
    the (rare) nodes whose frontier is wide enough to batch.
    """
    t = flat.np_tables
    if t is None:
        t = flat.np_tables = {
            "lat": _np.asarray(flat.lat, dtype=_np.int64),
            "enq": _np.asarray(flat.enq, dtype=_np.int64),
            "sig": _np.asarray(flat.sig, dtype=_np.int64),
        }
    return t


def _mask_indices(mask: int, n: int):
    """Dense indices of the set bits of ``mask``, ascending (NumPy array).

    Ascending order matches the lowest-bit-first scalar scan, so batch
    and scalar candidate lists agree even before the (total) sort.
    """
    nbytes = (n + 7) >> 3
    bits = _np.unpackbits(
        _np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=_np.uint8),
        bitorder="little",
    )
    return _np.nonzero(bits[:n])[0]


def _flat_timing(flat: _Flat, dense_order: List[int]) -> ScheduleTiming:
    """Price a complete schedule on the flat arrays (Ω over the order).

    Equivalent to ``compute_timing`` / pushing the order through a fresh
    ``IncrementalTimingState`` — same η recurrence, same carry-ins.
    """
    lat = flat.lat
    enq = flat.enq
    sig = flat.sig
    preds = flat.preds
    var_bound = flat.var_bound
    has_vb = flat.has_vb
    idents = flat.idents
    pipe_last = list(flat.pipe_last)
    issue = [0] * flat.n
    etas: List[int] = []
    issues: List[int] = []
    prev = -1  # issue time of the previous instruction; base = prev + 1
    for k in dense_order:
        base = prev + 1
        e = base
        p = sig[k]
        if p >= 0:
            pl = pipe_last[p]
            if pl is not None:
                v = pl + enq[k]
                if v > e:
                    e = v
        if has_vb:
            v = var_bound[k]
            if v is not None and v > e:
                e = v
        for d in preds[k]:
            v = issue[d] + lat[d]
            if v > e:
                e = v
        issue[k] = e
        etas.append(e - base)
        issues.append(e)
        if p >= 0:
            pipe_last[p] = e
        prev = e
    return ScheduleTiming(
        tuple(idents[k] for k in dense_order),
        tuple(etas),
        tuple(issues),
    )


def _flat_greedy(
    flat: _Flat, tiebreak: List[Tuple[int, ...]]
) -> ScheduleTiming:
    """The Gross/Abraham greedy of ``repro.sched.heuristics``, flattened.

    ``tiebreak[k]`` is the tie-break key suffix for dense index ``k``;
    each step picks the ready instruction minimizing ``(η, *tiebreak)``
    exactly as ``_greedy`` does.  Tie-break suffixes end in the unique
    program position, so the minimum is unique and the emitted order —
    hence the timing — is identical to the reference heuristic's.
    """
    n = flat.n
    lat = flat.lat
    enq = flat.enq
    sig = flat.sig
    preds = flat.preds
    succs = flat.succs
    var_bound = flat.var_bound
    has_vb = flat.has_vb
    idents = flat.idents
    pipe_last = list(flat.pipe_last)
    issue = [0] * n
    etas: List[int] = []
    issues: List[int] = []
    out: List[int] = []
    indeg = [len(preds[k]) for k in range(n)]
    ready = [k for k in range(n) if indeg[k] == 0]
    prev = -1
    while ready:
        base = prev + 1
        best_k = -1
        best_e = 0
        best_key = None
        for k in ready:
            e = base
            p = sig[k]
            if p >= 0:
                pl = pipe_last[p]
                if pl is not None:
                    v = pl + enq[k]
                    if v > e:
                        e = v
            if has_vb:
                v = var_bound[k]
                if v is not None and v > e:
                    e = v
            for d in preds[k]:
                v = issue[d] + lat[d]
                if v > e:
                    e = v
            key = (e - base, *tiebreak[k])
            if best_key is None or key < best_key:
                best_k, best_e, best_key = k, e, key
        ready.remove(best_k)
        out.append(best_k)
        issue[best_k] = best_e
        etas.append(best_e - base)
        issues.append(best_e)
        p = sig[best_k]
        if p >= 0:
            pipe_last[p] = best_e
        prev = best_e
        for s in succs[best_k]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    return ScheduleTiming(
        tuple(idents[k] for k in out),
        tuple(etas),
        tuple(issues),
    )


def run_fast_search(
    dag: DependenceDAG,
    machine: MachineDescription,
    resolver: SigmaResolver,
    options,
    initial: Optional[InitialConditions],
    seed: Tuple[int, ...],
    fits_budget,
    start: float,
    dfs=None,
):
    """Everything ``schedule_block`` does after seed validation, flattened.

    Seed pricing (step [1]), the heuristic incumbents, the root lower
    bound and the DFS all run on one ``_Flat`` lowering of the block, so
    the fast path pays a single lowering where the reference path builds
    a resolver + incremental state per pricing pass.  Mirrors the
    reference control flow in ``repro.sched.search`` decision for
    decision; returns a complete ``SearchResult`` (telemetry is recorded
    by the caller).

    ``dfs`` swaps the core loop implementation: ``None`` runs the
    Python :func:`_run_fast_dfs`; the native engine passes
    ``repro.native.bindings.native_dfs`` (same signature, same
    bit-for-bit outcome) so the whole preamble stays shared.
    """
    from .search import SearchResult

    perf_counter = time.perf_counter
    n = len(dag)
    if not dag.is_legal_order(seed):
        raise ValueError("order is not a legal (dependence-respecting) schedule")
    flat = _Flat(dag, machine, resolver, initial)
    index_of = flat.index_of

    # Step [1]: price the seed schedule (n omega calls), plus the
    # heuristic incumbents when enabled.
    seed_timing = _flat_timing(flat, [index_of[i] for i in seed])
    omega_calls = n
    best = seed_timing
    improvements = 0
    if options.heuristic_seeds and n > 1:
        idents = flat.idents
        heights = dag.heights
        descendants = dag.descendants
        position = dag.block.position_of
        gross_keys = [
            (-heights[i], -len(descendants[i]), position(i)) for i in idents
        ]
        greedy_keys = [(position(i),) for i in idents]
        for tiebreak in (gross_keys, greedy_keys):
            candidate = _flat_greedy(flat, tiebreak)
            omega_calls += n
            if candidate.total_nops < best.total_nops and fits_budget(
                candidate.order
            ):
                best = candidate
                improvements += 1

    if n <= 1:
        return SearchResult(
            best,
            seed_timing,
            omega_calls,
            True,
            perf_counter() - start,
            0,
            prune_counts=prune_counts(),
        )

    # Dense latency-weighted downstream chains: idents are program order
    # and dependences point forward, so a reverse scan sees successors
    # first (same recurrence as chain_below in the reference preamble).
    lat = flat.lat
    succs = flat.succs
    chain = [0] * n
    for k in range(n - 1, -1, -1):
        sk = succs[k]
        if sk:
            lk = lat[k]
            chain[k] = max(lk + chain[s] for s in sk)
    sig = flat.sig
    users = [0] * flat.P
    for k in range(n):
        if sig[k] >= 0:
            users[sig[k]] += 1
    max_latency = max((p.latency for p in machine.pipelines), default=1)

    # Root lower bound: can the incumbent already be proven optimal?
    if options.lower_bound_prune:
        root_lb = max(0, max(1 + c for c in chain) - n)
        pipe_enq = flat.pipe_enq
        for p in range(flat.P):
            ku = users[p]
            if ku:
                root_lb = max(root_lb, ((ku - 1) * pipe_enq[p] + 1) - n)
        if best.total_nops <= root_lb:
            return SearchResult(
                best,
                seed_timing,
                omega_calls,
                True,
                perf_counter() - start,
                improvements,
                proved_by_bound=True,
                prune_counts=prune_counts(bounds=1),
            )

    out = (dfs or _run_fast_dfs)(
        flat, dag, options, seed, best, omega_calls, improvements,
        start, chain, users, max_latency,
    )
    return SearchResult(
        best=out.best,
        initial=seed_timing,
        omega_calls=out.omega_calls,
        completed=out.completed,
        elapsed_seconds=perf_counter() - start,
        improvements=out.improvements,
        timed_out=out.timed_out,
        memo_evicted=out.memo_evicted,
        prune_counts=out.prune_counts,
    )


def run_native_search(
    dag: DependenceDAG,
    machine: MachineDescription,
    resolver: SigmaResolver,
    options,
    initial: Optional[InitialConditions],
    seed: Tuple[int, ...],
    fits_budget,
    start: float,
):
    """``run_fast_search`` with the C DFS (``engine="native"``).

    The preamble (seed pricing, heuristic incumbents, root lower bound)
    is literally :func:`run_fast_search`'s — only the core loop is
    swapped for the compiled kernel, so every ``SearchResult`` field
    except ``elapsed_seconds`` is bit-for-bit identical to the fast,
    vector and reference engines.  Without a usable C compiler this
    degrades to :func:`run_fast_search` after a one-line notice.
    """
    from ..native import bindings as _nb

    if not _nb.native_available():
        warn_native_fallback(_nb.unavailable_reason())
        return run_fast_search(
            dag, machine, resolver, options, initial, seed, fits_budget, start
        )
    return run_fast_search(
        dag, machine, resolver, options, initial, seed, fits_budget, start,
        dfs=_nb.native_dfs,
    )


def run_native_split(
    dag: DependenceDAG,
    machine: MachineDescription,
    resolver: SigmaResolver,
    seed: Tuple[int, ...],
    window: int,
    curtail_per_window: int,
    initial: Optional[InitialConditions],
) -> Tuple[ScheduleTiming, Tuple[Tuple[int, ...], ...], int, bool, Dict[str, int]]:
    """``run_fast_split`` compiled to C (``engine="native"``).

    Same contract and bit-for-bit identical returns; the flat timing
    state is carried across windows inside the kernel exactly like the
    Python splitter carries its own.  Degrades to
    :func:`run_fast_split` after a one-line notice when the C kernel is
    unavailable; empty blocks short-circuit to the Python splitter
    (nothing to schedule, nothing to accelerate).
    """
    from ..native import bindings as _nb

    if len(dag) == 0 or not _nb.native_available():
        if len(dag) > 0:
            warn_native_fallback(_nb.unavailable_reason())
        return run_fast_split(
            dag, machine, resolver, seed, window, curtail_per_window, initial
        )
    flat = _Flat(dag, machine, resolver, initial)
    timing, omega_calls, all_completed, totals = _nb.native_split(
        flat, seed, window, curtail_per_window
    )
    windows = tuple(
        tuple(seed[w_start:w_start + window])
        for w_start in range(0, len(seed), window)
    )
    return timing, windows, omega_calls, all_completed, totals


def _run_fast_dfs(
    flat: _Flat,
    dag: DependenceDAG,
    options,
    seed: Tuple[int, ...],
    best: ScheduleTiming,
    omega_calls: int,
    improvements: int,
    start: float,
    chain: List[int],
    users: List[int],
    max_latency: int,
) -> FastOutcome:
    """The pruned DFS of ``schedule_block``, on packed arrays.

    Called by :func:`run_fast_search` after the preamble (seed pricing,
    heuristic incumbents, root lower bound); mirrors the reference
    ``rec()`` decision-for-decision.  ``chain``/``users`` are the dense
    latency-chain and pending-pipeline-user tables (``users`` is mutated
    in place as instructions are pushed/popped).
    """
    n = flat.n
    idents = flat.idents
    index_of = flat.index_of
    lat = flat.lat
    enq = flat.enq
    sig = flat.sig
    preds = flat.preds
    succs = flat.succs
    succ_mask = flat.succ_mask
    pipe_enq = flat.pipe_enq
    pipe_last = list(flat.pipe_last)  # mutated in place by do/undo
    var_bound = flat.var_bound
    has_vb = flat.has_vb
    vb_items = flat.vb_items
    seed_at = [0] * n
    for pos, ident in enumerate(seed):
        seed_at[index_of[ident]] = pos

    used_pipes = tuple(p for p in range(flat.P) if users[p])

    budget = options.max_live
    if budget is not None:
        block_by_ident = dag.block.by_ident
        operands = [
            tuple(index_of[r] for r in set(block_by_ident(i).value_refs))
            for i in idents
        ]
        consumers_left = [0] * n
        for k in range(n):
            for r in operands[k]:
                consumers_left[r] += 1
        produces = [
            1 if block_by_ident(i).op.produces_value else 0 for i in idents
        ]
    live_count = 0

    curtail = options.curtail
    alpha_beta = options.alpha_beta
    equivalence = options.equivalence_prune
    lower_bounds = options.lower_bound_prune
    dominance = options.dominance_prune
    cheapest_first = options.cheapest_first
    max_memo = options.max_memo_entries
    deadline = (
        None if options.time_limit is None else start + options.time_limit
    )

    # Mutable search state (do/undo in place).
    order: List[int] = []
    etas: List[int] = []
    issue = [0] * n
    # Clobbered per-pipeline last-issue values, as two parallel stacks
    # (pipe index or -1, previous value) — cheaper than a tuple per push.
    saved_p: List[int] = []
    saved_v: List[Optional[int]] = []
    total_nops = 0
    last_iss = -1  # issue time of order[-1]; -1 when empty (base = 0)
    indeg = [len(preds[k]) for k in range(n)]
    ready_mask = 0
    for k in range(n):
        if indeg[k] == 0:
            ready_mask |= 1 << k
    mask = 0
    memo: Dict[tuple, int] = {}

    # Sound 5c signature: no pipeline, no predecessors -> successor-set
    # mask (-1 marks "not trivially interchangeable"; masks are >= 0).
    trivial = [
        succ_mask[k] if sig[k] < 0 and indeg[k] == 0 else -1
        for k in range(n)
    ]

    best_nops = best.total_nops
    best_timing = best
    completed = True
    timed_out = False
    n_legality = n_bounds = n_equivalence = n_alpha_beta = 0
    n_dominance = n_curtail = n_timeout = n_memo_evicted = 0
    by_seed = itemgetter(1)
    P = flat.P
    # Equivalence filtering only ever fires when some instruction is
    # trivially interchangeable; skipping the scan otherwise changes
    # nothing (no candidate has a signature, so nothing is filtered).
    any_trivial = equivalence and any(t >= 0 for t in trivial)
    perf_counter = time.perf_counter

    # One flat loop, everything in function locals.  `pending` >= 0
    # means "expand a node with that many remaining instructions"
    # (the body of the reference rec() before its candidate loop);
    # -1 means "advance the active frame's candidate iteration".  The
    # active frame lives in (cands, idx) locals; `frames` holds the
    # suspended ancestors.
    frames: List[tuple] = []
    cands: list = []
    idx = 0
    at_root = True
    pending = n
    while True:
        if pending >= 0:
            # ---- node entry: candidates + η, then node-level prunes —
            # legality, lower bounds, dominance, equivalence, in
            # reference order ----
            remaining = pending
            pending = -1
            if at_root:
                at_root = False
            else:
                frames.append((cands, idx))
            base = last_iss + 1
            cands = []
            lb = 0
            rm = ready_mask
            while rm:
                low = rm & -rm
                rm -= low
                k = low.bit_length() - 1
                e = base
                p = sig[k]
                if p >= 0:
                    pl = pipe_last[p]
                    if pl is not None:
                        v = pl + enq[k]
                        if v > e:
                            e = v
                if has_vb:
                    v = var_bound[k]
                    if v is not None and v > e:
                        e = v
                for d in preds[k]:
                    v = issue[d] + lat[d]
                    if v > e:
                        e = v
                eta = e - base
                cands.append((eta, seed_at[k], k))
                if lower_bounds:
                    # Chain part of the lower bound, folded into the
                    # build loop (max over the same candidate set).
                    gap = 1 + eta + chain[k] - remaining
                    if gap > lb:
                        lb = gap
            # Steps [5a]/[5b]: not-yet-ready instructions are excluded.
            n_legality += remaining - len(cands)
            if cheapest_first:
                cands.sort()
            else:
                cands.sort(key=by_seed)
            idx = 0

            pruned = False
            if order:
                mu = total_nops
                if lower_bounds:
                    tl = base - 1
                    for p in used_pipes:
                        ku = users[p]
                        if ku:
                            pl = pipe_last[p]
                            pe = pipe_enq[p]
                            first = tl + 1 if pl is None else pl + pe
                            gap = (first + (ku - 1) * pe) - (tl + remaining)
                            if gap > lb:
                                lb = gap
                    if mu + lb >= best_nops:
                        n_bounds += 1
                        pruned = True
                if not pruned and dominance:
                    tl = base - 1
                    pipes = []
                    for p in range(P):
                        pl = pipe_last[p]
                        if pl is not None and pl - tl + pipe_enq[p] > 1:
                            pipes.append((p, pl - tl))
                    dangling = []
                    for k in order[-(max_latency + 1):]:
                        slack = issue[k] + lat[k] - (tl + 1)
                        if slack > 0 and succ_mask[k] & ~mask:
                            dangling.append((k, slack))
                    dangling.sort()
                    residual_vars: tuple = ()
                    if has_vb:
                        residual_vars = tuple(
                            sorted(
                                (k, b - (tl + 1))
                                for k, b in vb_items
                                if not (mask >> k) & 1 and b > tl + 1
                            )
                        )
                    key = (mask, tuple(pipes), tuple(dangling), residual_vars)
                    prev = memo.get(key)
                    if prev is not None:
                        if mu >= prev:
                            n_dominance += 1
                            pruned = True
                        else:
                            memo[key] = mu
                    elif max_memo > 0:
                        if len(memo) >= max_memo:
                            memo.pop(next(iter(memo)))
                            n_memo_evicted += 1
                        memo[key] = mu

            if pruned:
                cands = ()
            elif any_trivial and len(cands) > 1:
                seen = set()
                filtered = []
                for c in cands:
                    s = trivial[c[2]]
                    if s >= 0:
                        if s in seen:
                            n_equivalence += 1
                            continue
                        seen.add(s)
                    filtered.append(c)
                cands = filtered

        if idx == len(cands):
            if not frames:
                break
            # Close the candidate that opened this frame, then undo it,
            # and resume the suspended parent frame.
            k = order[-1]
            for s in succs[k]:
                if indeg[s] == 0:
                    ready_mask &= ~(1 << s)
                indeg[s] += 1
            ready_mask |= 1 << k
            mask ^= 1 << k
            if budget is not None:
                if produces[k] and consumers_left[k] > 0:
                    live_count -= 1
                for r in operands[k]:
                    if consumers_left[r] == 0:
                        live_count += 1
                    consumers_left[r] += 1
            p = sig[k]
            if p >= 0:
                users[p] += 1
            order.pop()
            e2 = etas.pop()
            total_nops -= e2
            last_iss = issue[k] - e2 - 1
            sp = saved_p.pop()
            sv = saved_v.pop()
            if sp >= 0:
                pipe_last[sp] = sv
            cands, idx = frames.pop()
            continue
        eta, _, k = cands[idx]
        idx += 1
        if budget is not None:
            freed = 0
            for r in operands[k]:
                if consumers_left[r] == 1:
                    freed += 1
            if live_count - freed + produces[k] > budget:
                continue  # would not be allocatable: treat as illegal
        # Step [4]: curtail-point truncation.
        if omega_calls >= curtail:
            n_curtail += 1
            completed = False
            break
        if deadline is not None and perf_counter() > deadline:
            n_timeout += 1
            timed_out = True
            completed = False
            break
        omega_calls += 1
        # Push k (η cached from node entry; state identical since then;
        # last_iss = -1 on an empty order makes iss = eta, as Ω defines).
        iss = last_iss + 1 + eta
        order.append(k)
        etas.append(eta)
        issue[k] = iss
        total_nops += eta
        last_iss = iss
        p = sig[k]
        if p < 0:
            saved_p.append(-1)
            saved_v.append(None)
        else:
            saved_p.append(p)
            saved_v.append(pipe_last[p])
            pipe_last[p] = iss
            users[p] -= 1
        if budget is not None:
            for r in operands[k]:
                c = consumers_left[r] = consumers_left[r] - 1
                if c == 0:
                    live_count -= 1
            if produces[k] and consumers_left[k] > 0:
                live_count += 1
        depth = len(order)
        done = False
        if depth == n:
            # Step [3]: complete schedule; adopt if strictly better.
            if total_nops < best_nops:
                best_nops = total_nops
                best_timing = ScheduleTiming(
                    tuple(idents[q] for q in order),
                    tuple(etas),
                    tuple(issue[q] for q in order),
                )
                improvements += 1
            done = True
        elif alpha_beta and total_nops >= best_nops:
            # Step [6]: mu never decreases as a schedule grows.
            n_alpha_beta += 1
            done = True
        if done:
            if budget is not None:
                if produces[k] and consumers_left[k] > 0:
                    live_count -= 1
                for r in operands[k]:
                    if consumers_left[r] == 0:
                        live_count += 1
                    consumers_left[r] += 1
            if p >= 0:
                users[p] += 1
            order.pop()
            etas.pop()
            total_nops -= eta
            last_iss = iss - eta - 1
            sp = saved_p.pop()
            sv = saved_v.pop()
            if sp >= 0:
                pipe_last[sp] = sv
        else:
            ready_mask &= ~(1 << k)
            mask |= 1 << k
            for s in succs[k]:
                d = indeg[s] = indeg[s] - 1
                if d == 0:
                    ready_mask |= 1 << s
            pending = n - depth

    return FastOutcome(
        best=best_timing,
        omega_calls=omega_calls,
        improvements=improvements,
        completed=completed,
        timed_out=timed_out,
        memo_evicted=n_memo_evicted,
        prune_counts=prune_counts(
            legality=n_legality,
            bounds=n_bounds,
            equivalence=n_equivalence,
            alpha_beta=n_alpha_beta,
            curtail=n_curtail,
            timeout=n_timeout,
            dominance=n_dominance,
        ),
    )


def run_vector_search(
    dag: DependenceDAG,
    machine: MachineDescription,
    resolver: SigmaResolver,
    options,
    initial: Optional[InitialConditions],
    seed: Tuple[int, ...],
    fits_budget,
    start: float,
):
    """``run_fast_search`` with NumPy batch kernels (``engine="vector"``).

    Same contract as :func:`run_fast_search` — every ``SearchResult``
    field except ``elapsed_seconds`` is bit-for-bit identical to the
    fast and reference engines.  What changes is *how* the numbers are
    computed:

    * ready-set Ω scoring (DFS nodes, greedy seeding, split windows) is
      batched into fused NumPy passes whenever the frontier has at least
      ``VECTOR_MIN_FRONTIER`` candidates, and otherwise runs a scalar
      loop over an incrementally maintained dependence-constraint array
      (``cstr[k] = max(var bound, max over scheduled preds of
      issue + latency)``) instead of re-walking predecessor lists;
    * the pipeline-user and root lower bounds are evaluated with
      ``bincount``/array maxima on wide blocks;
    * dominance-memo keys are packed into single machine-width-free
      integers (mixed-radix over the pipe/dangling state) when the
      block carries no initial conditions.

    The DFS control flow, prune ordering and dominance memo semantics
    are untouched.  When NumPy is missing this degrades to
    :func:`run_fast_search` after a one-line notice.
    """
    from .search import SearchResult

    if _np is None:
        warn_vector_fallback()
        return run_fast_search(
            dag, machine, resolver, options, initial, seed, fits_budget, start
        )

    perf_counter = time.perf_counter
    n = len(dag)
    if not dag.is_legal_order(seed):
        raise ValueError("order is not a legal (dependence-respecting) schedule")
    flat = _Flat(dag, machine, resolver, initial)
    index_of = flat.index_of

    seed_timing = _flat_timing(flat, [index_of[i] for i in seed])
    omega_calls = n
    best = seed_timing
    improvements = 0
    if options.heuristic_seeds and n > 1:
        idents = flat.idents
        heights = dag.heights
        descendants = dag.descendants
        position = dag.block.position_of
        gross_keys = [
            (-heights[i], -len(descendants[i]), position(i)) for i in idents
        ]
        greedy_keys = [(position(i),) for i in idents]
        for tiebreak in (gross_keys, greedy_keys):
            candidate = _vector_greedy(flat, tiebreak)
            omega_calls += n
            if candidate.total_nops < best.total_nops and fits_budget(
                candidate.order
            ):
                best = candidate
                improvements += 1

    if n <= 1:
        return SearchResult(
            best,
            seed_timing,
            omega_calls,
            True,
            perf_counter() - start,
            0,
            prune_counts=prune_counts(),
        )

    lat = flat.lat
    succs = flat.succs
    chain = [0] * n
    for k in range(n - 1, -1, -1):
        sk = succs[k]
        if sk:
            lk = lat[k]
            chain[k] = max(lk + chain[s] for s in sk)
    max_latency = max((p.latency for p in machine.pipelines), default=1)

    if n >= VECTOR_MIN_FRONTIER:
        sig_np = _np_tables(flat)["sig"]
        users = _np.bincount(
            sig_np[sig_np >= 0], minlength=flat.P
        ).tolist()
    else:
        sig = flat.sig
        users = [0] * flat.P
        for k in range(n):
            if sig[k] >= 0:
                users[sig[k]] += 1

    if options.lower_bound_prune:
        if n >= VECTOR_MIN_FRONTIER:
            root_lb = max(0, int(_np.asarray(chain).max()) + 1 - n)
            users_np = _np.asarray(users, dtype=_np.int64)
            pe_np = _np.asarray(flat.pipe_enq, dtype=_np.int64)
            pipe_lb = _np.where(
                users_np > 0, (users_np - 1) * pe_np + 1 - n, _PL_NONE
            )
            if flat.P:
                root_lb = max(root_lb, int(pipe_lb.max()))
        else:
            root_lb = max(0, max(1 + c for c in chain) - n)
            pipe_enq = flat.pipe_enq
            for p in range(flat.P):
                ku = users[p]
                if ku:
                    root_lb = max(root_lb, ((ku - 1) * pipe_enq[p] + 1) - n)
        if best.total_nops <= root_lb:
            return SearchResult(
                best,
                seed_timing,
                omega_calls,
                True,
                perf_counter() - start,
                improvements,
                proved_by_bound=True,
                prune_counts=prune_counts(bounds=1),
            )

    out = _run_vector_dfs(
        flat, dag, options, seed, best, omega_calls, improvements,
        start, chain, users, max_latency,
    )
    return SearchResult(
        best=out.best,
        initial=seed_timing,
        omega_calls=out.omega_calls,
        completed=out.completed,
        elapsed_seconds=perf_counter() - start,
        improvements=out.improvements,
        timed_out=out.timed_out,
        memo_evicted=out.memo_evicted,
        prune_counts=out.prune_counts,
    )


def _vector_greedy(
    flat: _Flat, tiebreak: List[Tuple[int, ...]]
) -> ScheduleTiming:
    """:func:`_flat_greedy` with batch scoring on wide ready sets.

    Emits the identical order (tie-break keys end in the unique program
    position, so the minimum is unique): narrow frontiers run a scalar
    argmin over the incremental ``cstr`` constraint array, wide ones
    score every ready instruction in one NumPy pass and pick the
    minimum of ``(η, *tiebreak)`` via ``lexsort``.
    """
    n = flat.n
    lat = flat.lat
    enq = flat.enq
    sig = flat.sig
    succs = flat.succs
    var_bound = flat.var_bound
    idents = flat.idents
    pipe_last = list(flat.pipe_last)
    P = flat.P
    issue = [0] * n
    etas: List[int] = []
    issues: List[int] = []
    out: List[int] = []
    indeg = [len(flat.preds[k]) for k in range(n)]
    ready = [k for k in range(n) if indeg[k] == 0]
    # cstr[k]: dependence/carry-in floor on k's issue cycle.  For a
    # ready instruction every predecessor is already scheduled, so this
    # equals the reference's max over predecessors — no preds walk.
    cstr = [
        0 if var_bound[k] is None else max(0, var_bound[k]) for k in range(n)
    ]
    t = _np_tables(flat)
    enq_np = t["enq"]
    sig_np = t["sig"]
    T = _np.asarray(tiebreak, dtype=_np.int64)
    ncols = T.shape[1]
    prev = -1
    while ready:
        base = prev + 1
        if len(ready) >= VECTOR_MIN_FRONTIER:
            ks = _np.asarray(ready, dtype=_np.int64)
            e = _np.asarray(cstr, dtype=_np.int64)[ks]
            _np.maximum(e, base, out=e)
            if P:
                pl_np = _np.fromiter(
                    (pl if pl is not None else _PL_NONE for pl in pipe_last),
                    dtype=_np.int64,
                    count=P,
                )
                sg = sig_np[ks]
                pipe_term = _np.where(
                    sg >= 0, pl_np[sg] + enq_np[ks], _PL_NONE
                )
                _np.maximum(e, pipe_term, out=e)
            eta_np = e - base
            cols = T[ks]
            keys = tuple(
                cols[:, c] for c in range(ncols - 1, -1, -1)
            ) + (eta_np,)
            j = int(_np.lexsort(keys)[0])
            best_k = int(ks[j])
            best_e = int(e[j])
        else:
            best_k = -1
            best_e = 0
            best_key = None
            for k in ready:
                e = cstr[k]
                if base > e:
                    e = base
                p = sig[k]
                if p >= 0:
                    pl = pipe_last[p]
                    if pl is not None:
                        v = pl + enq[k]
                        if v > e:
                            e = v
                key = (e - base, *tiebreak[k])
                if best_key is None or key < best_key:
                    best_k, best_e, best_key = k, e, key
        ready.remove(best_k)
        out.append(best_k)
        issue[best_k] = best_e
        etas.append(best_e - base)
        issues.append(best_e)
        p = sig[best_k]
        if p >= 0:
            pipe_last[p] = best_e
        prev = best_e
        rel = best_e + lat[best_k]
        for s in succs[best_k]:
            if rel > cstr[s]:
                cstr[s] = rel
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    return ScheduleTiming(
        tuple(idents[k] for k in out),
        tuple(etas),
        tuple(issues),
    )


def run_fast_split(
    dag: DependenceDAG,
    machine: MachineDescription,
    resolver: SigmaResolver,
    seed: Tuple[int, ...],
    window: int,
    curtail_per_window: int,
    initial: Optional[InitialConditions],
    batch_frontier: Optional[int] = None,
) -> Tuple[ScheduleTiming, Tuple[Tuple[int, ...], ...], int, bool, Dict[str, int]]:
    """The windowed search of ``schedule_block_split``, on packed arrays.

    Returns ``(timing, windows, omega_calls, all_completed, totals)``;
    the caller wraps them into a ``SplitScheduleResult``.  The flat
    timing state is carried across windows exactly like the shared
    ``IncrementalTimingState`` in the reference, so cross-window
    latencies and enqueue conflicts are priced identically.

    ``batch_frontier`` (the vector engine, via :func:`run_vector_split`)
    enables the NumPy window scorer: ready frontiers at least that wide
    are priced in one fused array pass off an incrementally maintained
    dependence-constraint array instead of per-candidate predecessor
    walks.  Candidate η values are the same integers either way.
    """
    flat = _Flat(dag, machine, resolver, initial)
    n = flat.n
    idents = flat.idents
    index_of = flat.index_of
    lat = flat.lat
    enq = flat.enq
    sig = flat.sig
    preds = flat.preds
    pred_mask = flat.pred_mask
    succs = flat.succs
    pipe_last = flat.pipe_last
    var_bound = flat.var_bound
    has_vb = flat.has_vb

    order: List[int] = []
    etas: List[int] = []
    issue = [0] * n
    pipe_saved: List[Optional[Tuple[int, Optional[int]]]] = []
    total_nops = 0

    track_cstr = batch_frontier is not None and _np is not None
    if track_cstr:
        # Same invariant as the vector DFS: cstr[k] holds the floor
        # imposed by carry-ins and *scheduled* predecessors, with an
        # undo list per push so pricing passes restore it exactly.
        cstr = [
            0 if var_bound[k] is None else max(0, var_bound[k])
            for k in range(n)
        ]
        cstr_saved: List[List[int]] = []
        npt = _np_tables(flat)
        enq_np = npt["enq"]
        sig_np = npt["sig"]

    def fpeek(k: int) -> int:
        base = issue[order[-1]] + 1 if order else 0
        e = base
        p = sig[k]
        if p >= 0:
            pl = pipe_last[p]
            if pl is not None:
                v = pl + enq[k]
                if v > e:
                    e = v
        if has_vb:
            v = var_bound[k]
            if v is not None and v > e:
                e = v
        for d in preds[k]:
            v = issue[d] + lat[d]
            if v > e:
                e = v
        return e - base

    def fpush(k: int, eta: Optional[int] = None) -> None:
        nonlocal total_nops
        if eta is None:
            eta = fpeek(k)
        iss = issue[order[-1]] + 1 + eta if order else eta
        order.append(k)
        etas.append(eta)
        issue[k] = iss
        total_nops += eta
        p = sig[k]
        if p < 0:
            pipe_saved.append(None)
        else:
            pipe_saved.append((p, pipe_last[p]))
            pipe_last[p] = iss
        if track_cstr:
            rel = iss + lat[k]
            sv = []
            for s in succs[k]:
                c = cstr[s]
                sv.append(c)
                if rel > c:
                    cstr[s] = rel
            cstr_saved.append(sv)

    def fpop() -> None:
        nonlocal total_nops
        k = order.pop()
        total_nops -= etas.pop()
        saved = pipe_saved.pop()
        if saved is not None:
            pipe_last[saved[0]] = saved[1]
        if track_cstr:
            for s, c in zip(succs[k], cstr_saved.pop()):
                cstr[s] = c

    def window_search(members: List[int], curtail: int):
        """One window's branch-and-bound, mirroring ``_schedule_window``."""
        wn = len(members)
        member_mask = 0
        for k in members:
            member_mask |= 1 << k
        wseed = {k: pos for pos, k in enumerate(members)}
        if track_cstr:
            wseed_np = _np.zeros(n, dtype=_np.int64)
            for pos, k in enumerate(members):
                wseed_np[k] = pos
        windeg = {
            k: (pred_mask[k] & member_mask).bit_count() for k in members
        }
        ready0 = [k for k in members if windeg[k] == 0]
        base_nops = total_nops
        entry_len = len(order)

        def price(seq) -> int:
            for k in seq:
                fpush(k)
            nops = total_nops - base_nops
            for _ in seq:
                fpop()
            return nops

        def greedy_order() -> Tuple[int, ...]:
            local_indeg = dict(windeg)
            local_ready = list(ready0)
            out: List[int] = []
            while local_ready:
                pick = min(
                    local_ready, key=lambda k: (fpeek(k), wseed[k])
                )
                local_ready.remove(pick)
                fpush(pick)
                out.append(pick)
                for s in succs[pick]:
                    if (member_mask >> s) & 1:
                        local_indeg[s] -= 1
                        if local_indeg[s] == 0:
                            local_ready.append(s)
            for _ in out:
                fpop()
            return tuple(out)

        best_order = tuple(members)
        best_nops = price(best_order)
        candidate = greedy_order()
        candidate_nops = price(candidate)
        wcalls = 2 * wn
        if candidate_nops < best_nops:
            best_order, best_nops = candidate, candidate_nops

        chain_w: Dict[int, int] = {}
        for k in reversed(members):
            inner = [s for s in succs[k] if (member_mask >> s) & 1]
            chain_w[k] = (
                0 if not inner else max(lat[k] + chain_w[s] for s in inner)
            )
        wcomplete = True
        n_legality = n_bounds = n_alpha_beta = n_curtail = 0

        ready_mask = 0
        for k in ready0:
            ready_mask |= 1 << k

        def wexpand(remaining: int) -> list:
            nonlocal n_legality, n_bounds
            base = issue[order[-1]] + 1 if order else 0
            if track_cstr and ready_mask.bit_count() >= batch_frontier:
                # Vector engine, wide window frontier: one fused pass
                # over every ready candidate (same η integers as the
                # scalar loop below — cstr covers carry-ins and all
                # scheduled predecessors of a ready instruction).
                ks = _mask_indices(ready_mask, n)
                e = _np.asarray(cstr, dtype=_np.int64)[ks]
                _np.maximum(e, base, out=e)
                if flat.P:
                    pl_np = _np.fromiter(
                        (
                            pl if pl is not None else _PL_NONE
                            for pl in pipe_last
                        ),
                        dtype=_np.int64,
                        count=flat.P,
                    )
                    sg = sig_np[ks]
                    pipe_term = _np.where(
                        sg >= 0, pl_np[sg] + enq_np[ks], _PL_NONE
                    )
                    _np.maximum(e, pipe_term, out=e)
                eta_np = e - base
                sd = wseed_np[ks]
                o = _np.lexsort((ks, sd, eta_np))
                cands = list(
                    zip(
                        eta_np[o].tolist(),
                        sd[o].tolist(),
                        ks[o].tolist(),
                    )
                )
                n_legality += remaining - len(cands)
            else:
                cands = []
                rm = ready_mask
                while rm:
                    low = rm & -rm
                    rm -= low
                    k = low.bit_length() - 1
                    e = base
                    p = sig[k]
                    if p >= 0:
                        pl = pipe_last[p]
                        if pl is not None:
                            v = pl + enq[k]
                            if v > e:
                                e = v
                    if has_vb:
                        v = var_bound[k]
                        if v is not None and v > e:
                            e = v
                    for d in preds[k]:
                        v = issue[d] + lat[d]
                        if v > e:
                            e = v
                    cands.append((e - base, wseed[k], k))
                n_legality += remaining - len(cands)
                cands.sort()
            if len(order) > entry_len:
                window_nops = total_nops - base_nops
                lb = 0
                for eta, _, k in cands:
                    gap = 1 + eta + chain_w[k] - remaining
                    if gap > lb:
                        lb = gap
                if window_nops + lb >= best_nops:
                    n_bounds += 1
                    return [(), 0]
            return [cands, 0]

        frames = [wexpand(wn)]
        while frames:
            frame = frames[-1]
            cands = frame[0]
            idx = frame[1]
            if idx == len(cands):
                frames.pop()
                if not frames:
                    break
                k = order[-1]
                for s in succs[k]:
                    if (member_mask >> s) & 1:
                        if windeg[s] == 0:
                            ready_mask &= ~(1 << s)
                        windeg[s] += 1
                ready_mask |= 1 << k
                fpop()
                continue
            frame[1] = idx + 1
            eta, _, k = cands[idx]
            if wcalls >= curtail:
                n_curtail += 1
                wcomplete = False
                # Unwind the partial window (the reference's _Curtailed
                # propagates through per-push finally blocks): the shared
                # flat state must be back at window entry before commit.
                while len(order) > entry_len:
                    fpop()
                break
            wcalls += 1
            fpush(k, eta)
            window_nops = total_nops - base_nops
            depth = len(order) - entry_len
            done = False
            if depth == wn:
                if window_nops < best_nops:
                    best_nops = window_nops
                    best_order = tuple(order[-wn:])
                done = True
            elif window_nops >= best_nops:
                n_alpha_beta += 1
                done = True
            if done:
                fpop()
            else:
                ready_mask &= ~(1 << k)
                for s in succs[k]:
                    if (member_mask >> s) & 1:
                        d = windeg[s] = windeg[s] - 1
                        if d == 0:
                            ready_mask |= 1 << s
                frames.append(wexpand(wn - depth))

        return best_order, wcalls, wcomplete, prune_counts(
            legality=n_legality,
            bounds=n_bounds,
            alpha_beta=n_alpha_beta,
            curtail=n_curtail,
        )

    dense_seed = [index_of[i] for i in seed]
    omega_calls = 0
    all_completed = True
    windows: List[Tuple[int, ...]] = []
    totals = prune_counts()
    for w_start in range(0, len(dense_seed), window):
        members = dense_seed[w_start:w_start + window]
        windows.append(tuple(seed[w_start:w_start + window]))
        best_order, wcalls, wcomplete, wcounts = window_search(
            members, curtail_per_window
        )
        omega_calls += wcalls
        all_completed = all_completed and wcomplete
        for kind, count in wcounts.items():
            totals[kind] += count
        for k in best_order:
            fpush(k)

    timing = ScheduleTiming(
        tuple(idents[k] for k in order),
        tuple(etas),
        tuple(issue[k] for k in order),
    )
    return timing, tuple(windows), omega_calls, all_completed, totals


def run_vector_split(
    dag: DependenceDAG,
    machine: MachineDescription,
    resolver: SigmaResolver,
    seed: Tuple[int, ...],
    window: int,
    curtail_per_window: int,
    initial: Optional[InitialConditions],
) -> Tuple[ScheduleTiming, Tuple[Tuple[int, ...], ...], int, bool, Dict[str, int]]:
    """``run_fast_split`` with the NumPy batch window scorer enabled.

    Windows whose ready frontier reaches ``VECTOR_MIN_FRONTIER`` price
    all their candidates in one fused array pass; narrower frontiers
    run the shared scalar loop.  Results are bit-for-bit identical to
    ``run_fast_split`` (and the reference splitter); without NumPy this
    degrades to the fast splitter after a one-line notice.
    """
    if _np is None:
        warn_vector_fallback()
        return run_fast_split(
            dag, machine, resolver, seed, window, curtail_per_window, initial
        )
    return run_fast_split(
        dag, machine, resolver, seed, window, curtail_per_window, initial,
        batch_frontier=VECTOR_MIN_FRONTIER,
    )


def _run_vector_dfs(
    flat: _Flat,
    dag: DependenceDAG,
    options,
    seed: Tuple[int, ...],
    best: ScheduleTiming,
    omega_calls: int,
    improvements: int,
    start: float,
    chain: List[int],
    users: List[int],
    max_latency: int,
) -> FastOutcome:
    """The pruned DFS under ``engine="vector"``.

    Control flow, prune ordering and Ω accounting mirror
    :func:`_run_fast_dfs` decision-for-decision; the differences are in
    the evaluation machinery only:

    * candidate η and the chain lower bound come from the incremental
      ``cstr`` dependence-constraint array instead of per-candidate
      predecessor walks, scored scalar below ``VECTOR_MIN_FRONTIER``
      ready instructions and in one fused NumPy pass at or above it;
    * dominance-memo keys are packed into a single mixed-radix integer
      when the block has no carry-in state (``packable``) — an
      injective image of the reference tuple key, so hits, misses and
      FIFO evictions coincide exactly;
    * complete schedules and α-β-pruned extensions are resolved from
      ``total_nops + η`` before pushing (the push/undo pair is dead
      work for a leaf — state-neutral and count-preserving).
    """
    n = flat.n
    idents = flat.idents
    index_of = flat.index_of
    lat = flat.lat
    enq = flat.enq
    sig = flat.sig
    preds = flat.preds
    succs = flat.succs
    succ_mask = flat.succ_mask
    pipe_enq = flat.pipe_enq
    pipe_last = list(flat.pipe_last)
    var_bound = flat.var_bound
    has_vb = flat.has_vb
    vb_items = flat.vb_items
    seed_at = [0] * n
    for pos, ident in enumerate(seed):
        seed_at[index_of[ident]] = pos

    used_pipes = tuple(p for p in range(flat.P) if users[p])

    budget = options.max_live
    if budget is not None:
        block_by_ident = dag.block.by_ident
        operands = [
            tuple(index_of[r] for r in set(block_by_ident(i).value_refs))
            for i in idents
        ]
        consumers_left = [0] * n
        for k in range(n):
            for r in operands[k]:
                consumers_left[r] += 1
        produces = [
            1 if block_by_ident(i).op.produces_value else 0 for i in idents
        ]
    live_count = 0

    curtail = options.curtail
    alpha_beta = options.alpha_beta
    equivalence = options.equivalence_prune
    lower_bounds = options.lower_bound_prune
    dominance = options.dominance_prune
    cheapest_first = options.cheapest_first
    max_memo = options.max_memo_entries
    deadline = (
        None if options.time_limit is None else start + options.time_limit
    )

    # Incremental dependence constraint: cstr[k] = max(0, var bound,
    # max over *scheduled* predecessors d of issue[d] + lat[d]).  A
    # ready candidate has every predecessor scheduled, so its η is
    # max(base, pipe term, cstr[k]) - base — bit for bit the reference
    # recurrence, without walking preds[k] at every node.
    cstr = [
        0 if var_bound[k] is None else max(0, var_bound[k]) for k in range(n)
    ]
    cstr_saved: List[int] = []  # flat undo stack, len(succs[k]) per expansion

    # Packed dominance-memo keys: (mask, pipes, dangling) folded into a
    # single mixed-radix int.  Injective, so the memo partitions
    # exactly like the reference tuple keys; only available without
    # carry-in state (then every pipe's last issue <= tl and every
    # latency fits the machine's max, keeping all digits in range).
    packable = (
        dominance
        and not has_vb
        and all(pl is None for pl in flat.pipe_last)
        and (n == 0 or max(lat) <= max_latency)
    )
    if packable:
        # Per-pipe digit: 0 = "cannot still conflict", else tl - pl + 1
        # in [1, enq[p] - 1] — the same predicate the tuple key uses.
        pipe_rad = [max(2, pipe_enq[p]) for p in range(flat.P)]
        pipe_stride = [1] * flat.P
        acc = 1
        for p in range(flat.P):
            pipe_stride[p] = acc
            acc *= pipe_rad[p]
        pipe_space = acc
        # Dangling digits: slack in [0, max_latency) at radix position
        # k.  A sum of slack * radix**k is order-independent, so the
        # backward scan needs no sort to agree with the reference's
        # sorted tuple of (k, slack) pairs.
        dpow = [0] * n
        acc = 1
        for k in range(n):
            dpow[k] = acc
            acc *= max_latency

    order: List[int] = []
    etas: List[int] = []
    issue = [0] * n
    saved_p: List[int] = []
    saved_v: List[Optional[int]] = []
    total_nops = 0
    last_iss = -1
    indeg = [len(preds[k]) for k in range(n)]
    ready_mask = 0
    for k in range(n):
        if indeg[k] == 0:
            ready_mask |= 1 << k
    mask = 0
    memo: Dict[object, int] = {}

    trivial = [
        succ_mask[k] if sig[k] < 0 and indeg[k] == 0 else -1
        for k in range(n)
    ]

    best_nops = best.total_nops
    best_timing = best
    completed = True
    timed_out = False
    n_legality = n_bounds = n_equivalence = n_alpha_beta = 0
    n_dominance = n_curtail = n_timeout = n_memo_evicted = 0
    by_seed = itemgetter(1)
    P = flat.P
    any_trivial = equivalence and any(t >= 0 for t in trivial)
    perf_counter = time.perf_counter
    npt = _np_tables(flat)
    enq_np = npt["enq"]
    sig_np = npt["sig"]
    chain_np = _np.asarray(chain, dtype=_np.int64)
    seed_np = _np.asarray(seed_at, dtype=_np.int64)

    # Suspended ancestor frames, as parallel stacks (cheaper than a
    # tuple per frame); the active frame lives in (cands, idx) locals.
    cands_stack: List[list] = []
    idx_stack: List[int] = []
    cands: list = []
    idx = 0
    at_root = True
    pending = n
    while True:
        if pending >= 0:
            # ---- node entry: candidate η + chain bound, then the
            # node-level prunes in reference order ----
            remaining = pending
            pending = -1
            if at_root:
                at_root = False
            else:
                cands_stack.append(cands)
                idx_stack.append(idx)
            base = last_iss + 1
            rc = ready_mask.bit_count()
            n_legality += remaining - rc
            if rc == 1:
                # Most nodes on the paper population offer exactly one
                # ready instruction; skip list build and sort entirely.
                k = ready_mask.bit_length() - 1
                e = cstr[k]
                if base > e:
                    e = base
                p = sig[k]
                if p >= 0:
                    pl = pipe_last[p]
                    if pl is not None:
                        v = pl + enq[k]
                        if v > e:
                            e = v
                eta = e - base
                cands = [(eta, seed_at[k], k)]
                lb = 0
                if lower_bounds:
                    lb = 1 + eta + chain[k] - remaining
                    if lb < 0:
                        lb = 0
            elif rc >= VECTOR_MIN_FRONTIER:
                # Wide frontier: score every ready instruction in one
                # fused array pass.
                ks = _mask_indices(ready_mask, n)
                e = _np.asarray(cstr, dtype=_np.int64)[ks]
                _np.maximum(e, base, out=e)
                if P:
                    pl_np = _np.fromiter(
                        (
                            pl if pl is not None else _PL_NONE
                            for pl in pipe_last
                        ),
                        dtype=_np.int64,
                        count=P,
                    )
                    sg = sig_np[ks]
                    pipe_term = _np.where(
                        sg >= 0, pl_np[sg] + enq_np[ks], _PL_NONE
                    )
                    _np.maximum(e, pipe_term, out=e)
                eta_np = e - base
                lb = 0
                if lower_bounds:
                    lb = int((eta_np + chain_np[ks]).max()) + 1 - remaining
                    if lb < 0:
                        lb = 0
                sd = seed_np[ks]
                if cheapest_first:
                    o = _np.lexsort((ks, sd, eta_np))
                else:
                    o = _np.argsort(sd)
                cands = list(
                    zip(
                        eta_np[o].tolist(),
                        sd[o].tolist(),
                        ks[o].tolist(),
                    )
                )
            else:
                cands = []
                lb = 0
                rm = ready_mask
                while rm:
                    low = rm & -rm
                    rm -= low
                    k = low.bit_length() - 1
                    e = cstr[k]
                    if base > e:
                        e = base
                    p = sig[k]
                    if p >= 0:
                        pl = pipe_last[p]
                        if pl is not None:
                            v = pl + enq[k]
                            if v > e:
                                e = v
                    eta = e - base
                    cands.append((eta, seed_at[k], k))
                    if lower_bounds:
                        gap = 1 + eta + chain[k] - remaining
                        if gap > lb:
                            lb = gap
                if cheapest_first:
                    cands.sort()
                else:
                    cands.sort(key=by_seed)
            idx = 0

            pruned = False
            if order:
                mu = total_nops
                if lower_bounds:
                    tl = base - 1
                    for p in used_pipes:
                        ku = users[p]
                        if ku:
                            pl = pipe_last[p]
                            pe = pipe_enq[p]
                            first = tl + 1 if pl is None else pl + pe
                            gap = (first + (ku - 1) * pe) - (tl + remaining)
                            if gap > lb:
                                lb = gap
                    if mu + lb >= best_nops:
                        n_bounds += 1
                        pruned = True
                if not pruned and dominance:
                    tl = base - 1
                    if packable:
                        code = 0
                        for p in range(P):
                            pl = pipe_last[p]
                            if pl is not None:
                                d = tl - pl
                                if d < pipe_enq[p] - 1:
                                    code += (d + 1) * pipe_stride[p]
                        # Issue times strictly increase along the
                        # order: walk backward, stop at the first
                        # instruction whose result cannot be in flight.
                        dcode = 0
                        notmask = ~mask
                        for q in range(len(order) - 1, -1, -1):
                            k = order[q]
                            isk = issue[k]
                            if isk + max_latency <= tl + 1:
                                break
                            slack = isk + lat[k] - tl - 1
                            if slack > 0 and succ_mask[k] & notmask:
                                dcode += slack * dpow[k]
                        key = ((dcode * pipe_space + code) << n) | mask
                    else:
                        pipes = []
                        for p in range(P):
                            pl = pipe_last[p]
                            if pl is not None and pl - tl + pipe_enq[p] > 1:
                                pipes.append((p, pl - tl))
                        dangling = []
                        for k in order[-(max_latency + 1):]:
                            slack = issue[k] + lat[k] - (tl + 1)
                            if slack > 0 and succ_mask[k] & ~mask:
                                dangling.append((k, slack))
                        dangling.sort()
                        residual_vars: tuple = ()
                        if has_vb:
                            residual_vars = tuple(
                                sorted(
                                    (k, b - (tl + 1))
                                    for k, b in vb_items
                                    if not (mask >> k) & 1 and b > tl + 1
                                )
                            )
                        key = (mask, tuple(pipes), tuple(dangling), residual_vars)
                    prev = memo.get(key)
                    if prev is not None:
                        if mu >= prev:
                            n_dominance += 1
                            pruned = True
                        else:
                            memo[key] = mu
                    elif max_memo > 0:
                        if len(memo) >= max_memo:
                            memo.pop(next(iter(memo)))
                            n_memo_evicted += 1
                        memo[key] = mu

            if pruned:
                cands = ()
            elif any_trivial and len(cands) > 1:
                seen = set()
                filtered = []
                for c in cands:
                    s = trivial[c[2]]
                    if s >= 0:
                        if s in seen:
                            n_equivalence += 1
                            continue
                        seen.add(s)
                    filtered.append(c)
                cands = filtered

        if idx == len(cands):
            if not cands_stack:
                break
            k = order[-1]
            ssk = succs[k]
            for s in ssk:
                if indeg[s] == 0:
                    ready_mask &= ~(1 << s)
                indeg[s] += 1
            for s in reversed(ssk):
                cstr[s] = cstr_saved.pop()
            ready_mask |= 1 << k
            mask ^= 1 << k
            if budget is not None:
                if produces[k] and consumers_left[k] > 0:
                    live_count -= 1
                for r in operands[k]:
                    if consumers_left[r] == 0:
                        live_count += 1
                    consumers_left[r] += 1
            p = sig[k]
            if p >= 0:
                users[p] += 1
            order.pop()
            e2 = etas.pop()
            total_nops -= e2
            last_iss = issue[k] - e2 - 1
            sp = saved_p.pop()
            sv = saved_v.pop()
            if sp >= 0:
                pipe_last[sp] = sv
            cands = cands_stack.pop()
            idx = idx_stack.pop()
            continue
        eta, _, k = cands[idx]
        idx += 1
        if budget is not None:
            freed = 0
            for r in operands[k]:
                if consumers_left[r] == 1:
                    freed += 1
            if live_count - freed + produces[k] > budget:
                continue
        if omega_calls >= curtail:
            n_curtail += 1
            completed = False
            break
        if deadline is not None and perf_counter() > deadline:
            n_timeout += 1
            timed_out = True
            completed = False
            break
        omega_calls += 1
        # Leaf skip: a complete schedule or an α-β-pruned extension
        # never mutates the search state — its outcome is a pure
        # function of total_nops + η, so the fast engine's push/undo
        # pair is dead work here.
        new_nops = total_nops + eta
        if len(order) + 1 == n:
            if new_nops < best_nops:
                best_nops = new_nops
                iss = last_iss + 1 + eta
                best_timing = ScheduleTiming(
                    tuple(idents[q] for q in order) + (idents[k],),
                    tuple(etas) + (eta,),
                    tuple(issue[q] for q in order) + (iss,),
                )
                improvements += 1
            continue
        if alpha_beta and new_nops >= best_nops:
            n_alpha_beta += 1
            continue
        iss = last_iss + 1 + eta
        order.append(k)
        etas.append(eta)
        issue[k] = iss
        total_nops += eta
        last_iss = iss
        p = sig[k]
        if p < 0:
            saved_p.append(-1)
            saved_v.append(None)
        else:
            saved_p.append(p)
            saved_v.append(pipe_last[p])
            pipe_last[p] = iss
            users[p] -= 1
        if budget is not None:
            for r in operands[k]:
                c = consumers_left[r] = consumers_left[r] - 1
                if c == 0:
                    live_count -= 1
            if produces[k] and consumers_left[k] > 0:
                live_count += 1
        ready_mask &= ~(1 << k)
        mask |= 1 << k
        rel = iss + lat[k]
        for s in succs[k]:
            d = indeg[s] = indeg[s] - 1
            if d == 0:
                ready_mask |= 1 << s
            c = cstr[s]
            cstr_saved.append(c)
            if rel > c:
                cstr[s] = rel
        pending = n - len(order)

    return FastOutcome(
        best=best_timing,
        omega_calls=omega_calls,
        improvements=improvements,
        completed=completed,
        timed_out=timed_out,
        memo_evicted=n_memo_evicted,
        prune_counts=prune_counts(
            legality=n_legality,
            bounds=n_bounds,
            equivalence=n_equivalence,
            alpha_beta=n_alpha_beta,
            curtail=n_curtail,
            timeout=n_timeout,
            dominance=n_dominance,
        ),
    )
