"""Modulo software pipelining over the multi-pipeline model.

The paper schedules straight-line blocks; this module extends the same
latency/enqueue machine tables to the repo's first loop-level workload.
A :class:`~repro.ir.loop.LoopBlock` (body tuples + derived loop-carried
dependences) is scheduled as a *modulo schedule*: every body tuple ``z``
gets a non-negative **offset**, and instance ``(z, iteration i)`` issues
at cycle ``i * II + offset(z)`` for one global **initiation interval**
``II``.  A schedule is feasible at ``II`` when

* **single issue** — offsets are pairwise distinct modulo ``II`` (the
  machine issues one instruction or NOP per tick, so a steady-state
  window of ``II`` cycles holds each body tuple exactly once);
* **dependences** — for every dependence ``z -> w`` with iteration
  distance ``d`` (0 for intra-iteration edges),
  ``offset(w) + d*II >= offset(z) + latency(z)`` — the same uniform
  producer-latency rule the block scheduler's Ω applies (section 4.2.2
  step [6]), now with ``d*II`` of cross-iteration slack;
* **enqueue windows modulo II** — for every pipeline, the cyclic windows
  ``[offset mod II, offset mod II + enqueue)`` of its users are pairwise
  disjoint (the modulo reservation table).

The minimum initiation interval **MII** is the classic two-sided bound
(:func:`min_initiation_interval`): the resource bound *ResMII* from
per-pipeline enqueue pressure (and the single-issue bound ``n``), and
the recurrence bound *RecMII* from distance-weighted dependence cycles.

:func:`schedule_loop` then searches candidate IIs upward from MII.  The
existing block engines are reused twice: ``schedule_block`` on the
acyclic body provides the priority order that seeds the modulo placement
search, and the *steady-state fixpoint* of that order (iterating the
block Ω under its own ``carry_out`` conditions until the window
stabilizes — i.e. software pipelining with whole iterations as stages)
prices the always-feasible incumbent.  The plain list-schedule order is
priced the same way, which makes ``result.ii <= result.list_ii`` hold by
construction.  Every emitted schedule is re-checked against the three
feasibility rules above before it is returned; the *independent*
re-derivation lives in ``repro.verify.certificate.check_steady_state``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..ir.dag import DependenceDAG
from ..ir.loop import LoopBlock, LoopCarriedDep
from ..machine.machine import MachineDescription
from ..telemetry import Telemetry
from .list_scheduler import list_schedule
from .nop_insertion import (
    InitialConditions,
    PipelineAssignment,
    ScheduleTiming,
    SigmaResolver,
    compute_timing,
)
from .search import ScheduleRequest, SearchOptions, schedule_block

#: Placement attempts the modulo search may spend per candidate II.
DEFAULT_PLACEMENT_BUDGET = 50_000

#: Fixpoint rounds before the steady-state iteration gives up and falls
#: back to bump-validation of its last window.
_MAX_FIXPOINT_ROUNDS = 32


# ----------------------------------------------------------------------
# The dependence graph with iteration distances
# ----------------------------------------------------------------------
#: One dependence as the modulo scheduler sees it:
#: (producer, consumer, producer latency, iteration distance).
_Edge = Tuple[int, int, int, int]


def _distance_edges(
    dag: DependenceDAG,
    carried: Sequence[LoopCarriedDep],
    resolver: SigmaResolver,
) -> List[_Edge]:
    edges: List[_Edge] = []
    for e in dag.edges:
        edges.append((e.producer, e.consumer, resolver.latency(e.producer), 0))
    for dep in carried:
        edges.append(
            (dep.producer, dep.consumer, resolver.latency(dep.producer),
             dep.distance)
        )
    return edges


@dataclass(frozen=True)
class MiiReport:
    """The two-sided minimum-II bound and its components."""

    res_mii: int  #: resource bound: max(n, per-pipeline enqueue pressure)
    rec_mii: int  #: recurrence bound: max cycle ceil(latencies/distances)

    @property
    def mii(self) -> int:
        return max(self.res_mii, self.rec_mii, 1)

    def __str__(self) -> str:
        return f"MII {self.mii} (res {self.res_mii}, rec {self.rec_mii})"


def _has_positive_cycle(
    idents: Sequence[int], edges: Sequence[_Edge], ii: int
) -> bool:
    """Floyd–Warshall positive-cycle test at weight ``lat - II*dist``."""
    index = {z: k for k, z in enumerate(idents)}
    n = len(idents)
    neg = float("-inf")
    dist = [[neg] * n for _ in range(n)]
    for producer, consumer, lat, d in edges:
        w = lat - ii * d
        u, v = index[producer], index[consumer]
        if u == v:
            if w > 0:
                return True
            continue
        if w > dist[u][v]:
            dist[u][v] = w
    for k in range(n):
        row_k = dist[k]
        for i in range(n):
            d_ik = dist[i][k]
            if d_ik == neg:
                continue
            row_i = dist[i]
            for j in range(n):
                via = d_ik + row_k[j]
                if via > row_i[j]:
                    row_i[j] = via
        if any(dist[i][i] > 0 for i in range(n)):
            return True
    return any(dist[i][i] > 0 for i in range(n))


def min_initiation_interval(
    loop: LoopBlock,
    machine: MachineDescription,
    assignment: Optional[PipelineAssignment] = None,
) -> MiiReport:
    """MII = max(ResMII, RecMII) for ``loop`` on ``machine``.

    *ResMII* is the larger of the body size ``n`` (single issue: a
    steady-state window holds every body tuple once) and, per pipeline,
    ``users * enqueue_time`` (the cyclic enqueue windows must tile into
    ``II`` slots).  *RecMII* is the smallest ``II`` for which no
    dependence cycle has positive weight ``sum(latencies) -
    II * sum(distances)`` — found by binary search with a
    Floyd–Warshall positive-cycle test.  Every cycle contains a carried
    edge (the body DAG is acyclic), so the search space is bounded by
    the total latency mass.
    """
    dag = DependenceDAG(loop.body)
    assignment = _pin_assignment(dag, machine, assignment)
    resolver = SigmaResolver(dag, machine, assignment)
    n = len(loop.body)
    if n == 0:
        return MiiReport(res_mii=0, rec_mii=0)

    res = n
    pressure: Dict[int, int] = {}
    for z in dag.idents:
        pid = resolver.sigma(z)
        if pid is not None:
            pressure[pid] = pressure.get(pid, 0) + 1
    for pid, users in pressure.items():
        res = max(res, users * machine.pipeline(pid).enqueue_time)

    edges = _distance_edges(dag, loop.carried, resolver)
    lo, hi = 1, max(1, sum(lat for _, _, lat, _ in edges))
    if not _has_positive_cycle(dag.idents, edges, hi):
        while lo < hi:
            mid = (lo + hi) // 2
            if _has_positive_cycle(dag.idents, edges, mid):
                lo = mid + 1
            else:
                hi = mid
        rec = lo
    else:  # pragma: no cover - total latency always bounds every cycle
        rec = hi + 1
    return MiiReport(res_mii=res, rec_mii=rec)


def _pin_assignment(
    dag: DependenceDAG,
    machine: MachineDescription,
    assignment: Optional[PipelineAssignment],
) -> Optional[PipelineAssignment]:
    """Loops need a fixed sigma; pin non-deterministic machines to the
    first viable pipeline per tuple (the multi-pipeline extension's
    baseline policy) unless the caller already chose."""
    if assignment is not None or machine.is_deterministic:
        return assignment
    from .multi import first_pipeline_assignment

    return first_pipeline_assignment(dag, machine)


# ----------------------------------------------------------------------
# Feasibility of a complete offset table (the scheduler-side check; the
# independent certificate re-derives this in repro.verify.certificate)
# ----------------------------------------------------------------------
def modulo_feasible(
    loop: LoopBlock,
    machine: MachineDescription,
    offsets: Mapping[int, int],
    ii: int,
    assignment: Optional[PipelineAssignment] = None,
    dag: Optional[DependenceDAG] = None,
) -> bool:
    """Do ``offsets`` at ``ii`` satisfy all three modulo-schedule rules?"""
    if ii < 1:
        return False
    dag = dag or DependenceDAG(loop.body)
    assignment = _pin_assignment(dag, machine, assignment)
    resolver = SigmaResolver(dag, machine, assignment)
    idents = dag.idents
    if set(offsets) != set(idents):
        return False
    if any(offsets[z] < 0 for z in idents):
        return False
    slots = {z: offsets[z] % ii for z in idents}
    if len(set(slots.values())) != len(idents):
        return False
    for producer, consumer, lat, d in _distance_edges(
        dag, loop.carried, resolver
    ):
        if offsets[consumer] + d * ii < offsets[producer] + lat:
            return False
    by_pipe: Dict[int, List[int]] = {}
    for z in idents:
        pid = resolver.sigma(z)
        if pid is not None:
            by_pipe.setdefault(pid, []).append(slots[z])
    for pid, starts in by_pipe.items():
        enqueue = machine.pipeline(pid).enqueue_time
        starts.sort()
        if len(starts) == 1:
            if ii < enqueue:
                return False
            continue
        for a, b in zip(starts, starts[1:]):
            if b - a < enqueue:
                return False
        if starts[0] + ii - starts[-1] < enqueue:
            return False
    return True


# ----------------------------------------------------------------------
# Steady-state fixpoint of a fixed body order (the list-II pricer and
# the always-feasible incumbent)
# ----------------------------------------------------------------------
def steady_state_offsets(
    loop: LoopBlock,
    machine: MachineDescription,
    order: Sequence[int],
    assignment: Optional[PipelineAssignment] = None,
    dag: Optional[DependenceDAG] = None,
) -> Tuple[int, Dict[int, int]]:
    """Price a fixed body order as a modulo schedule: ``(II, offsets)``.

    Iterates the block Ω over ``order`` under its own
    :func:`~repro.sched.interblock.carry_out` conditions — iteration
    ``i+1`` scheduled as if it began the cycle after iteration ``i``'s
    last issue — until the window stabilizes.  The fixpoint's issue
    times are valid offsets at ``II = window span``: they are distinct
    in ``[0, II)``, contiguity covers the intra-iteration constraints,
    and the carry conditions cover the carried ones.  The result is
    defensively re-checked with :func:`modulo_feasible` and ``II``
    bumped upward if ever needed (fixed offsets only get *more*
    feasible as ``II`` grows).
    """
    from .interblock import carry_out

    dag = dag or DependenceDAG(loop.body)
    assignment = _pin_assignment(dag, machine, assignment)
    resolver = SigmaResolver(dag, machine, assignment)
    conditions = InitialConditions()
    timing = None
    for _ in range(_MAX_FIXPOINT_ROUNDS):
        timing = compute_timing(
            dag, order, machine, assignment=assignment,
            check_legality=False, initial=conditions,
        )
        next_conditions = carry_out(timing, dag, machine, resolver)
        if next_conditions == conditions:
            break
        conditions = next_conditions
    offsets = {z: t for z, t in zip(timing.order, timing.issue_times)}
    ii = timing.issue_span_cycles
    while not modulo_feasible(
        loop, machine, offsets, ii, assignment=assignment, dag=dag
    ):  # pragma: no cover - the fixpoint window is feasible by construction
        ii += 1
    return ii, offsets


# ----------------------------------------------------------------------
# The modulo placement search for one candidate II
# ----------------------------------------------------------------------
class _BudgetExhausted(Exception):
    """Internal unwind: the per-II placement budget ran out."""


def _find_kernel(
    priority: Sequence[int],
    ii: int,
    resolver: SigmaResolver,
    edges: Sequence[_Edge],
    budget: int,
    counter: List[int],
) -> Optional[Dict[int, int]]:
    """Complete modulo placement at a fixed ``ii`` — or its refutation.

    An offset decomposes as ``stage * ii + slot``, and the two halves
    separate cleanly: the single-issue and enqueue-window rules see only
    the slots, while for fixed slots the dependence rules become pure
    difference constraints on the stages —

        stage(w) >= stage(z) + ceil((lat(z) - d*ii + slot(z) - slot(w)) / ii)

    which have a solution iff the constraint graph has no positive
    cycle.  So the search enumerates *slots* depth-first in ``priority``
    order (the block search's optimal order — high-priority instructions
    claim early slots), pruning on slot/window conflicts and on a
    positive cycle among the already-placed subgraph, and solves the
    stages exactly (Bellman–Ford longest path) at each leaf.  Unlike a
    direct search over offsets this terminates with a definitive answer:
    ``None`` means *no* modulo schedule exists at ``ii`` — a refutation
    ``schedule_loop`` turns into an optimality proof — and only
    :class:`_BudgetExhausted` (past ``budget`` placement attempts)
    leaves the candidate undecided.
    """
    order = list(priority)
    diff_edges: List[Tuple[int, int, int, int]] = []  # (p, c, lat, d)
    for producer, consumer, lat, d in edges:
        if producer == consumer:
            if d * ii < lat:  # self-recurrence refutes ii outright
                return None
            continue
        diff_edges.append((producer, consumer, lat, d))

    slots: Dict[int, int] = {}
    used_slots: Set[int] = set()
    pipe_busy: Dict[int, Set[int]] = {}

    def stages() -> Optional[Dict[int, int]]:
        """Longest-path stages over the placed subgraph; None on a
        positive cycle (the difference constraints are infeasible)."""
        stage = {z: 0 for z in slots}
        active = [
            (p, c, -(-(lat - d * ii + slots[p] - slots[c]) // ii))
            for p, c, lat, d in diff_edges
            if p in slots and c in slots
        ]
        for _ in range(len(slots) + 1):
            changed = False
            for p, c, need in active:
                if stage[p] + need > stage[c]:
                    stage[c] = stage[p] + need
                    changed = True
            if not changed:
                return stage
        return None  # positive cycle

    def place(k: int) -> bool:
        if k == len(order):
            return True
        z = order[k]
        pid = resolver.sigma(z)
        enqueue = resolver.enqueue_time(z)
        busy = pipe_busy.setdefault(pid, set()) if pid is not None else None
        for s in range(ii):
            counter[0] += 1
            if counter[0] > budget:
                raise _BudgetExhausted
            if s in used_slots:
                continue
            if pid is not None:
                window = {(s + j) % ii for j in range(enqueue)}
                if len(window) < enqueue or window & busy:
                    continue
            slots[z] = s
            used_slots.add(s)
            if pid is not None:
                busy.update(window)
            if stages() is not None and place(k + 1):
                return True
            del slots[z]
            used_slots.discard(s)
            if pid is not None:
                busy.difference_update(window)
        return False

    if not place(0):
        return None
    stage = stages()
    assert stage is not None  # the leaf was pruned on feasibility
    lift = -min(stage.values())
    return {z: (stage[z] + lift) * ii + slots[z] for z in order}


# ----------------------------------------------------------------------
# The result
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModuloScheduleResult:
    """Outcome of one modulo-scheduling run (``ScheduleOutcome``
    protocol: ``schedule`` / ``objective`` / ``provenance`` /
    ``elapsed_seconds`` / ``completed``)."""

    loop: LoopBlock
    ii: int  #: the achieved initiation interval (the objective)
    mii: int  #: max(res_mii, rec_mii) — the lower bound searched from
    res_mii: int
    rec_mii: int
    #: ident -> issue offset; instance ``(z, i)`` issues at
    #: ``i * ii + offsets[z]``.
    offsets: Mapping[int, int]
    #: II of the steady-state pipelined *list* schedule (the baseline
    #: the searched kernel must never lose to).
    list_ii: int
    #: Provably optimal: either ``ii == mii`` (met the lower bound) or
    #: every candidate II below ``ii`` was *completely refuted* by the
    #: placement search (which decomposes offsets into slots plus exact
    #: stage feasibility, so a ``None`` answer is a proof, not a miss).
    completed: bool
    #: True when the modulo placement search found the kernel; False
    #: when the steady-state incumbent already matched the best known II.
    searched: bool
    placements: int  #: placement attempts across all candidate IIs
    omega_calls: int  #: Ω calls spent by the seeding block search
    elapsed_seconds: float
    assignment: Optional[Mapping[int, Optional[int]]] = None

    #: Backend provenance (``ScheduleOutcome`` protocol).
    provenance = "modulo"

    def __post_init__(self) -> None:
        object.__setattr__(self, "offsets", dict(self.offsets))

    # ------------------------------------------------------------------
    @property
    def objective(self) -> int:
        """The minimized integer — the initiation interval."""
        return self.ii

    @property
    def stage_count(self) -> int:
        """Stages (iterations simultaneously in flight in steady state)."""
        if not self.offsets:
            return 0
        return max(off // self.ii for off in self.offsets.values()) + 1

    @property
    def kernel(self) -> Tuple[Optional[int], ...]:
        """The II-cycle steady-state window: slot -> ident (None = NOP)."""
        slots: List[Optional[int]] = [None] * self.ii
        for z, off in self.offsets.items():
            slots[off % self.ii] = z
        return tuple(slots)

    @property
    def schedule(self) -> ScheduleTiming:
        """The kernel window as a :class:`ScheduleTiming`
        (``ScheduleOutcome`` protocol): body tuples in slot order with
        the window's NOP gaps as etas."""
        pairs = sorted(
            (off % self.ii, z) for z, off in self.offsets.items()
        )
        order = tuple(z for _, z in pairs)
        issue_times = tuple(slot for slot, _ in pairs)
        etas = []
        previous = -1
        for slot in issue_times:
            etas.append(slot - previous - 1)
            previous = slot
        return ScheduleTiming(order, tuple(etas), issue_times)

    # ------------------------------------------------------------------
    def stream(self, trip_count: int) -> List[Tuple[int, int, int]]:
        """The flat issue stream for ``trip_count`` iterations:
        ``(cycle, iteration, ident)`` sorted by cycle.  Well defined for
        any trip count — offsets distinct modulo II mean no two
        instances ever share a cycle."""
        if trip_count < 0:
            raise ValueError("trip_count must be non-negative")
        entries = [
            (i * self.ii + off, i, z)
            for i in range(trip_count)
            for z, off in self.offsets.items()
        ]
        entries.sort()
        return entries

    def prologue(self, trip_count: int) -> List[Tuple[int, int, int]]:
        """Stream entries before the first full kernel window (the
        pipeline fill: cycles ``< (stage_count - 1) * II``)."""
        fill = (self.stage_count - 1) * self.ii
        return [e for e in self.stream(trip_count) if e[0] < fill]

    def epilogue(self, trip_count: int) -> List[Tuple[int, int, int]]:
        """Stream entries after the last full kernel window (the
        pipeline drain: cycles ``>= trip_count * II``)."""
        return [
            e for e in self.stream(trip_count)
            if e[0] >= trip_count * self.ii
        ]

    @property
    def kernel_text(self) -> str:
        """Human-readable kernel listing (one line per window slot)."""
        by_ident = self.loop.body.by_ident
        lines = []
        for slot, ident in enumerate(self.kernel):
            if ident is None:
                lines.append(f"    {slot:>3}: nop")
            else:
                stage = self.offsets[ident] // self.ii
                suffix = f"  ; stage {stage}" if stage else ""
                lines.append(f"    {slot:>3}: {by_ident(ident)}{suffix}")
        return "\n".join(lines)

    def __str__(self) -> str:
        status = "optimal" if self.completed else "best-known"
        return (
            f"ModuloScheduleResult(II={self.ii} [{status}], MII={self.mii} "
            f"(res {self.res_mii}, rec {self.rec_mii}), "
            f"stages={self.stage_count}, list II={self.list_ii})"
        )


# ----------------------------------------------------------------------
# The entry point
# ----------------------------------------------------------------------
def schedule_loop(
    loop: Union[LoopBlock, ScheduleRequest],
    machine: Optional[MachineDescription] = None,
    options: SearchOptions = SearchOptions(),
    assignment: Optional[PipelineAssignment] = None,
    telemetry: Optional[Telemetry] = None,
    engine: Optional[str] = None,
    backend: str = "search",
    ilp_options=None,
    placement_budget: int = DEFAULT_PLACEMENT_BUDGET,
) -> ModuloScheduleResult:
    """Find a minimum-II modulo schedule of ``loop`` for ``machine``.

    Accepts either a :class:`~repro.ir.loop.LoopBlock` with the legacy
    keyword arguments or a complete
    :class:`~repro.sched.search.ScheduleRequest` carrying one (the
    unified request API; only ``telemetry`` / ``placement_budget`` may
    be combined with a request).

    The procedure:

    1. compute MII (:func:`min_initiation_interval`);
    2. price two always-feasible incumbents by steady-state fixpoint
       (:func:`steady_state_offsets`): the list-schedule order (whose II
       becomes ``list_ii``) and the ``schedule_block``-optimal body
       order — ``engine``/``backend``/``options`` select and configure
       the underlying block engine exactly as for straight-line code;
    3. for each candidate ``II`` from MII up to the incumbent, run the
       complete modulo placement search (:func:`_find_kernel`) seeded
       with the optimal body order; the first feasible ``II`` wins, and
       every smaller candidate is either feasible or *refuted*.

    ``completed=True`` iff the achieved II equals MII or every smaller
    candidate was refuted within the placement budget — both are
    optimality proofs.  ``ii <= list_ii`` holds by construction.
    """
    start = time.perf_counter()
    if isinstance(loop, ScheduleRequest):
        request = loop
        overridden = [
            name
            for name, value, default in (
                ("machine", machine, None),
                ("options", options, SearchOptions()),
                ("assignment", assignment, None),
                ("engine", engine, None),
                ("backend", backend, "search"),
                ("ilp_options", ilp_options, None),
            )
            if value != default
        ]
        if overridden:
            raise ValueError(
                "pass either a ScheduleRequest or the legacy keyword "
                f"arguments, not both (also given: {', '.join(overridden)})"
            )
        if not request.is_loop:
            raise TypeError(
                "this request's problem is not a LoopBlock; use "
                "schedule_block for straight-line problems"
            )
        machine = request.machine
        options = request.options
        assignment = request.assignment
        engine = request.engine
        backend = request.backend
        ilp_options = request.ilp_options
        loop = request.loop
    if machine is None:
        raise TypeError(
            "machine is required unless a ScheduleRequest is passed"
        )
    if len(loop.body) == 0:
        raise ValueError("cannot modulo-schedule an empty loop body")

    dag = DependenceDAG(loop.body)
    assignment = _pin_assignment(dag, machine, assignment)
    resolver = SigmaResolver(dag, machine, assignment)
    report = min_initiation_interval(loop, machine, assignment)
    mii = report.mii

    # Incumbents: the steady-state pipelined list schedule, and the
    # steady-state of the block-optimal body order (engine reuse).
    list_order = list_schedule(dag)
    list_ii, list_offsets = steady_state_offsets(
        loop, machine, list_order, assignment=assignment, dag=dag
    )
    block_result = schedule_block(
        dag,
        machine,
        options,
        assignment=assignment,
        telemetry=telemetry,
        engine=engine,
        backend=backend,
        ilp_options=ilp_options,
    )
    priority = block_result.best.order
    opt_ii, opt_offsets = steady_state_offsets(
        loop, machine, priority, assignment=assignment, dag=dag
    )
    if opt_ii <= list_ii:
        incumbent_ii, incumbent_offsets = opt_ii, opt_offsets
    else:
        incumbent_ii, incumbent_offsets = list_ii, list_offsets

    edges = _distance_edges(dag, loop.carried, resolver)
    counter = [0]
    searched = False
    refuted_below = True  # every candidate below the answer fully refuted?
    ii, offsets = incumbent_ii, incumbent_offsets
    for candidate in range(mii, incumbent_ii):
        try:
            found = _find_kernel(
                priority, candidate, resolver, edges,
                placement_budget, counter,
            )
        except _BudgetExhausted:
            refuted_below = False
            break
        if found is not None:
            ii, offsets, searched = candidate, found, True
            break

    if not modulo_feasible(
        loop, machine, offsets, ii, assignment=assignment, dag=dag
    ):  # pragma: no cover - both sources are feasible by construction
        raise AssertionError(
            f"modulo scheduler produced an infeasible kernel at II={ii}"
        )

    result = ModuloScheduleResult(
        loop=loop,
        ii=ii,
        mii=mii,
        res_mii=report.res_mii,
        rec_mii=report.rec_mii,
        offsets=offsets,
        list_ii=list_ii,
        completed=ii == mii or refuted_below,
        searched=searched,
        placements=counter[0],
        omega_calls=block_result.omega_calls,
        elapsed_seconds=time.perf_counter() - start,
        assignment=dict(assignment) if assignment is not None else None,
    )
    if telemetry is not None:
        telemetry.add_time("time.schedule_loop", result.elapsed_seconds)
    return result
