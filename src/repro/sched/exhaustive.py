"""Exhaustive scheduling baselines (section 2.3).

Two reference searches frame the pruning results of Table 1:

* :func:`exhaustive_search_size` — the unpruned search considers all
  ``n!`` permutations; the count alone is reported (the paper computes
  "just under 5 years" for n = 15 rather than running it, and so do we).
* :func:`legal_only_search` — "the most obvious pruning": enumerate only
  dependence-legal schedules (topological orders of the DAG) and evaluate
  Ω on each.  This is Table 1's middle column and, for small blocks, the
  ground-truth optimum the optimal search is tested against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from .nop_insertion import (
    IncrementalTimingState,
    PipelineAssignment,
    ScheduleTiming,
    SigmaResolver,
)

#: Table 1 reports legal-schedule counts above ten million as ">9,999,000".
LEGAL_COUNT_CAP = 10_000_000


def exhaustive_search_size(n: int) -> int:
    """Number of Ω calls an unpruned exhaustive search would make: n!."""
    return math.factorial(n)


@dataclass(frozen=True)
class LegalSearchResult:
    """Outcome of enumerating all dependence-legal schedules."""

    best: ScheduleTiming
    omega_calls: int  # complete schedules evaluated
    exhausted: bool  # False when the enumeration cap was hit

    @property
    def optimal_nops(self) -> int:
        return self.best.total_nops


def legal_only_search(
    dag: DependenceDAG,
    machine: MachineDescription,
    assignment: Optional[PipelineAssignment] = None,
    limit: Optional[int] = None,
) -> LegalSearchResult:
    """Evaluate Ω on every legal schedule; return the best.

    ``limit`` caps the number of schedules evaluated (a curtail point for
    this baseline); with the default ``None`` the enumeration runs to
    completion, which is only sensible for small or dependence-dense
    blocks.  The enumeration shares prefix work via the incremental
    timing state, but unlike the optimal search it applies *no* pruning:
    every legal schedule is completed and counted.
    """
    resolver = SigmaResolver(dag, machine, assignment)
    state = IncrementalTimingState(dag, resolver)
    n = len(dag)
    best: Optional[ScheduleTiming] = None
    calls = 0
    exhausted = True

    indegree = {i: len(dag.rho(i)) for i in dag.idents}
    ready = [i for i in dag.idents if indegree[i] == 0]

    def rec() -> bool:
        """Returns False when the limit was hit and recursion must unwind."""
        nonlocal best, calls, exhausted
        if len(state) == n:
            calls += 1
            if best is None or state.total_nops < best.total_nops:
                best = state.snapshot()
            if limit is not None and calls >= limit:
                exhausted = False
                return False
            return True
        for ident in list(ready):
            ready.remove(ident)
            state.push(ident)
            opened = []
            for succ in dag.successors(ident):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
                    opened.append(succ)
            keep_going = rec()
            for succ in opened:
                ready.remove(succ)
            for succ in dag.successors(ident):
                indegree[succ] += 1
            state.pop()
            ready.append(ident)
            if not keep_going:
                return False
        return True

    if n == 0:
        return LegalSearchResult(ScheduleTiming((), (), ()), 0, True)
    rec()
    assert best is not None
    return LegalSearchResult(best, calls, exhausted)


def count_legal_schedules(dag: DependenceDAG, cap: int = LEGAL_COUNT_CAP) -> int:
    """Count of legal schedules; :data:`COUNT_CAPPED` above ``cap``."""
    return dag.count_legal_orders(cap)
