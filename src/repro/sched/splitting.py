"""Block splitting for very large basic blocks (section 5.3).

The paper: *"For very large basic blocks, it might be useful to split the
basic blocks into smaller sections (containing, say, twenty instructions
or less each) and find solutions which are locally optimal.  A good
heuristic for the split might be to simply partition the list schedule."*

That is exactly what this module does.  The list schedule is a topological
order, so each consecutive window of it has all external predecessors in
earlier windows; each window is then scheduled by a bounded
branch-and-bound *continuing from* the committed pipeline/issue state of
the previous windows, so cross-window latencies and enqueue conflicts are
accounted for precisely — only the *ordering freedom* is restricted to
within a window.

The result is a valid schedule of the whole block whose NOP count is an
upper bound on the optimum; the benchmark harness measures the gap and
the (dramatic) search-cost reduction on 40-80-instruction blocks.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from ..telemetry import Telemetry, prune_counts
from .list_scheduler import list_schedule
from .nop_insertion import (
    IncrementalTimingState,
    InitialConditions,
    PipelineAssignment,
    ScheduleTiming,
    SigmaResolver,
)
from .search import _Curtailed

#: The paper's suggested window size.
DEFAULT_WINDOW = 20


@dataclass(frozen=True)
class SplitScheduleResult:
    """Outcome of windowed locally-optimal scheduling."""

    timing: ScheduleTiming
    windows: Tuple[Tuple[int, ...], ...]
    omega_calls: int
    all_windows_completed: bool
    elapsed_seconds: float
    #: Prune events summed over all windows (``repro.telemetry.PRUNE_KINDS``).
    prune_counts: Mapping[str, int] = field(default_factory=dict)

    @property
    def total_nops(self) -> int:
        return self.timing.total_nops

    @property
    def window_sizes(self) -> Tuple[int, ...]:
        return tuple(len(w) for w in self.windows)


def schedule_block_split(
    dag: DependenceDAG,
    machine: MachineDescription,
    window: int = DEFAULT_WINDOW,
    curtail_per_window: int = 10_000,
    assignment: Optional[PipelineAssignment] = None,
    seed: Optional[Sequence[int]] = None,
    initial_conditions: Optional[InitialConditions] = None,
    telemetry: Optional[Telemetry] = None,
    engine: str = "fast",
) -> SplitScheduleResult:
    """Schedule a block window-by-window, each window locally optimal.

    Parameters
    ----------
    window:
        Maximum instructions re-ordered jointly (paper suggests ~20).
    curtail_per_window:
        Curtail point applied to each window's search independently.
    engine:
        ``"fast"`` runs the windows on the flattened array engine in
        :mod:`repro.sched.core`; ``"vector"`` adds that engine's NumPy
        batch window scorer (degrading to ``"fast"`` with a one-line
        notice when NumPy is absent); ``"native"`` runs the windows on
        the compiled C kernel in :mod:`repro.native` (degrading to
        ``"fast"`` with a one-line notice when no C compiler is
        available); ``"reference"`` runs the recursive formulation
        below.  Results are bit-for-bit identical (everything except
        ``elapsed_seconds``).
    """
    if window < 1:
        raise ValueError("window must be at least 1 instruction")
    if engine not in ("fast", "reference", "vector", "native"):
        raise ValueError(
            f"unknown search engine {engine!r} "
            "(expected 'fast', 'reference', 'vector' or 'native')"
        )
    start = time.perf_counter()
    if seed is None:
        seed = list_schedule(dag)
    seed = tuple(seed)
    if sorted(seed) != sorted(dag.idents):
        raise ValueError("seed must be a permutation of the block's tuples")

    resolver = SigmaResolver(dag, machine, assignment)

    if engine in ("vector", "native"):
        from .core import resolve_engine

        engine = resolve_engine(engine, telemetry=telemetry)

    if engine in ("fast", "vector", "native"):
        if engine == "vector":
            from .core import run_vector_split as run_split
        elif engine == "native":
            from .core import run_native_split as run_split
        else:
            from .core import run_fast_split as run_split

        timing, windows, omega_calls, all_completed, totals = run_split(
            dag, machine, resolver, seed, window,
            curtail_per_window, initial_conditions,
        )
        result = SplitScheduleResult(
            timing=timing,
            windows=windows,
            omega_calls=omega_calls,
            all_windows_completed=all_completed,
            elapsed_seconds=time.perf_counter() - start,
            prune_counts=totals,
        )
        if telemetry is not None:
            telemetry.record_search(result)
        return result
    state = IncrementalTimingState(dag, resolver, initial_conditions)
    successors = {i: tuple(dag.successors(i)) for i in dag.idents}
    omega_calls = 0
    all_completed = True
    windows: List[Tuple[int, ...]] = []
    totals = prune_counts()

    for w_start in range(0, len(seed), window):
        members = seed[w_start : w_start + window]
        windows.append(members)
        best_order, window_calls, window_complete, window_counts = (
            _schedule_window(
                dag, state, resolver, members, successors, curtail_per_window
            )
        )
        omega_calls += window_calls
        all_completed = all_completed and window_complete
        for kind, count in window_counts.items():
            totals[kind] += count
        # Commit the window's best order onto the shared state.
        for ident in best_order:
            state.push(ident)

    result = SplitScheduleResult(
        timing=state.snapshot(),
        windows=tuple(windows),
        omega_calls=omega_calls,
        all_windows_completed=all_completed,
        elapsed_seconds=time.perf_counter() - start,
        prune_counts=totals,
    )
    if telemetry is not None:
        telemetry.record_search(result)
    return result


def _schedule_window(
    dag: DependenceDAG,
    state: IncrementalTimingState,
    resolver: SigmaResolver,
    members: Tuple[int, ...],
    successors: Dict[int, Tuple[int, ...]],
    curtail: int,
) -> Tuple[Tuple[int, ...], int, bool, Dict[str, int]]:
    """Branch-and-bound over orderings of ``members`` on top of ``state``.

    Returns (best order, omega calls, completed flag, prune counts).
    ``state`` is left exactly as it was on entry (all pushes undone).
    """
    member_set = set(members)
    n = len(members)
    seed_pos = {ident: pos for pos, ident in enumerate(members)}
    # Indegree counting only dependences *within* the window; external
    # predecessors are in earlier windows (seed is topological).
    indegree = {
        i: sum(1 for p in dag.rho(i) if p in member_set) for i in members
    }
    ready = [i for i in members if indegree[i] == 0]
    base_nops = state.total_nops
    base_len = len(state.order)

    def price(order: Tuple[int, ...]) -> int:
        for ident in order:
            state.push(ident)
        nops = state.total_nops - base_nops
        for _ in order:
            state.pop()
        return nops

    def greedy_order() -> Tuple[int, ...]:
        """Pipeline-aware greedy over the window, on top of the carry-in
        state — a much tighter incumbent than the raw seed slice."""
        local_indeg = dict(indegree)
        local_ready = list(ready)
        out: List[int] = []
        while local_ready:
            pick = min(
                local_ready,
                key=lambda i: (state.peek_eta(i), seed_pos[i]),
            )
            local_ready.remove(pick)
            state.push(pick)
            out.append(pick)
            for succ in successors[pick]:
                if succ in member_set:
                    local_indeg[succ] -= 1
                    if local_indeg[succ] == 0:
                        local_ready.append(succ)
        for _ in out:
            state.pop()
        return tuple(out)

    # Incumbents: the seed slice and the greedy order (n omega calls each).
    best_order = members
    best_nops = price(members)
    candidate = greedy_order()
    candidate_nops = price(candidate)
    omega_calls = 2 * n
    if candidate_nops < best_nops:
        best_order, best_nops = candidate, candidate_nops

    # Window-local chain bound: latency chains *within* the window (a
    # chain escaping the window costs later windows, not this one).
    chain_in_window: Dict[int, int] = {}
    for ident in reversed(members):
        inner = [s for s in successors[ident] if s in member_set]
        chain_in_window[ident] = (
            0
            if not inner
            else max(
                resolver.latency(ident) + chain_in_window[s] for s in inner
            )
        )
    completed = True
    n_legality = n_bounds = n_alpha_beta = n_curtail = 0

    def rec(remaining: int) -> None:
        nonlocal best_order, best_nops, omega_calls
        nonlocal n_legality, n_bounds, n_alpha_beta, n_curtail
        cands = sorted(ready, key=lambda i: (state.peek_eta(i), seed_pos[i]))
        n_legality += remaining - len(cands)
        if len(state.order) > base_len:
            window_nops = state.total_nops - base_nops
            lb = 0
            for i in cands:
                gap = 1 + state.peek_eta(i) + chain_in_window[i] - remaining
                if gap > lb:
                    lb = gap
            if window_nops + lb >= best_nops:
                n_bounds += 1
                return
        for ident in cands:
            if omega_calls >= curtail:
                n_curtail += 1
                raise _Curtailed
            omega_calls += 1
            state.push(ident)
            try:
                window_nops = state.total_nops - base_nops
                if remaining == 1:
                    if window_nops < best_nops:
                        best_nops = window_nops
                        best_order = state.order[-n:]
                elif window_nops >= best_nops:
                    n_alpha_beta += 1
                else:
                    ready.remove(ident)
                    opened = []
                    for succ in successors[ident]:
                        if succ in member_set:
                            indegree[succ] -= 1
                            if indegree[succ] == 0:
                                ready.append(succ)
                                opened.append(succ)
                    try:
                        rec(remaining - 1)
                    finally:
                        for succ in opened:
                            ready.remove(succ)
                        for succ in successors[ident]:
                            if succ in member_set:
                                indegree[succ] += 1
                        ready.append(ident)
            finally:
                state.pop()

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n * 10 + 1000))
    try:
        rec(n)
    except _Curtailed:
        completed = False
    finally:
        sys.setrecursionlimit(old_limit)

    return best_order, omega_calls, completed, prune_counts(
        legality=n_legality,
        bounds=n_bounds,
        alpha_beta=n_alpha_beta,
        curtail=n_curtail,
    )
