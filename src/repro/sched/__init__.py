"""Schedulers: NOP insertion (Ω), list-scheduling seed, heuristic
baselines, the optimal branch-and-bound search, and the multi-pipeline
and block-splitting extensions."""

from .exhaustive import (
    LEGAL_COUNT_CAP,
    LegalSearchResult,
    count_legal_schedules,
    exhaustive_search_size,
    legal_only_search,
)
from .heuristics import greedy_schedule, gross_schedule
from .interblock import (
    ScheduledSequence,
    carry_out,
    schedule_sequence,
)
from .list_scheduler import list_schedule, program_order
from .multi import (
    MultiScheduleResult,
    first_pipeline_assignment,
    round_robin_assignment,
    schedule_block_multi,
)
from .nop_insertion import (
    IncrementalTimingState,
    InitialConditions,
    PipelineAssignment,
    ScheduleTiming,
    SigmaResolver,
    compute_timing,
    sequential_etas,
    total_nops,
)
from .pipelining import (
    DEFAULT_PLACEMENT_BUDGET,
    MiiReport,
    ModuloScheduleResult,
    min_initiation_interval,
    modulo_feasible,
    schedule_loop,
    steady_state_offsets,
)
from .search import (
    DEFAULT_CURTAIL,
    ScheduleOutcome,
    ScheduleRequest,
    SearchOptions,
    SearchResult,
    schedule_block,
    unsupported_backend_option,
)
from .splitting import (
    DEFAULT_WINDOW,
    SplitScheduleResult,
    schedule_block_split,
)

__all__ = [
    "IncrementalTimingState",
    "InitialConditions",
    "PipelineAssignment",
    "ScheduleTiming",
    "SigmaResolver",
    "compute_timing",
    "sequential_etas",
    "total_nops",
    "list_schedule",
    "program_order",
    "greedy_schedule",
    "gross_schedule",
    "LEGAL_COUNT_CAP",
    "LegalSearchResult",
    "count_legal_schedules",
    "exhaustive_search_size",
    "legal_only_search",
    "DEFAULT_CURTAIL",
    "ScheduleOutcome",
    "ScheduleRequest",
    "SearchOptions",
    "SearchResult",
    "schedule_block",
    "unsupported_backend_option",
    "DEFAULT_PLACEMENT_BUDGET",
    "MiiReport",
    "ModuloScheduleResult",
    "min_initiation_interval",
    "modulo_feasible",
    "schedule_loop",
    "steady_state_offsets",
    "MultiScheduleResult",
    "first_pipeline_assignment",
    "round_robin_assignment",
    "schedule_block_multi",
    "DEFAULT_WINDOW",
    "SplitScheduleResult",
    "schedule_block_split",
    "ScheduledSequence",
    "carry_out",
    "schedule_sequence",
]
