"""Multi-pipeline selection — the extension of paper footnote 3.

The general machine model of section 4.1 lets one operation class map to
*several* pipelines (Table 3: ``Add -> {3, 4}``), but "the algorithm
presented in section 4.2 does not support this feature" — it needs every
instruction pinned to one pipeline.  This module supplies both halves of
that story:

* :func:`round_robin_assignment` / :func:`first_pipeline_assignment` —
  static pinning policies that produce a :data:`PipelineAssignment` for
  the core scheduler (the paper's implicit behaviour, and the baseline);
* :func:`schedule_block_multi` — a branch-and-bound that searches over
  instruction order *and* pipeline choice simultaneously, with the same
  alpha-beta bound and curtail point.  Pipeline choices are explored
  cheapest-first (least immediate NOPs), and symmetric choices among
  identical same-function pipelines with equal availability are collapsed
  (choosing either of two idle identical adders yields isomorphic
  subtrees), which keeps the branching factor near the deterministic
  case's in practice.

Note on the engine switch: :func:`schedule_block_multi` runs its own
joint order-and-assignment search and never calls ``schedule_block``,
so ``SearchOptions.engine`` does not apply here.  The flattened array
core (:mod:`repro.sched.core`) accelerates the fixed-assignment search
only; multi-pipeline selection always uses this recursive search.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.dag import DependenceDAG
from ..machine.machine import UNPIPELINED_LATENCY, MachineDescription
from ..telemetry import Telemetry, prune_counts
from .list_scheduler import list_schedule
from .search import SearchOptions, _Curtailed


# ----------------------------------------------------------------------
# Static assignment policies (baselines usable with the core scheduler)
# ----------------------------------------------------------------------
def first_pipeline_assignment(
    dag: DependenceDAG, machine: MachineDescription
) -> Dict[int, Optional[int]]:
    """Pin every tuple to the lowest-numbered viable pipeline."""
    out: Dict[int, Optional[int]] = {}
    for t in dag.block:
        pids = machine.pipelines_for(t.op)
        out[t.ident] = min(pids) if pids else None
    return out


def round_robin_assignment(
    dag: DependenceDAG, machine: MachineDescription
) -> Dict[int, Optional[int]]:
    """Distribute same-class operations across their viable pipelines in
    program order (a natural static load-balancing baseline)."""
    counters: Dict[Tuple[int, ...], int] = {}
    out: Dict[int, Optional[int]] = {}
    for t in dag.block:
        pids = tuple(sorted(machine.pipelines_for(t.op)))
        if not pids:
            out[t.ident] = None
            continue
        k = counters.get(pids, 0)
        out[t.ident] = pids[k % len(pids)]
        counters[pids] = k + 1
    return out


# ----------------------------------------------------------------------
# Joint order + assignment search
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MultiScheduleResult:
    """Outcome of the selection-aware search."""

    order: Tuple[int, ...]
    etas: Tuple[int, ...]
    assignment: Dict[int, Optional[int]]
    total_nops: int
    omega_calls: int
    completed: bool
    elapsed_seconds: float
    timed_out: bool = False
    #: Prune events by kind (see ``repro.telemetry.PRUNE_KINDS``).
    prune_counts: Mapping[str, int] = field(default_factory=dict)

    @property
    def issue_span_cycles(self) -> int:
        return len(self.order) + self.total_nops


class _MultiState:
    """Incremental timing where each push also fixes a pipeline choice."""

    def __init__(self, dag: DependenceDAG, machine: MachineDescription):
        self.dag = dag
        self.machine = machine
        self._pipes = {p.ident: p for p in machine.pipelines}
        self.order: List[int] = []
        self.etas: List[int] = []
        self.issue: Dict[int, int] = {}
        self.chosen: Dict[int, Optional[int]] = {}
        self.pipe_last: Dict[int, int] = {}
        self._undo: List[Optional[Tuple[int, Optional[int]]]] = []
        self.total_nops = 0

    def latency_of(self, ident: int) -> int:
        pid = self.chosen[ident]
        return UNPIPELINED_LATENCY if pid is None else self._pipes[pid].latency

    def peek_eta(self, ident: int, pid: Optional[int]) -> int:
        if not self.order:
            return 0
        base = self.issue[self.order[-1]] + 1
        earliest = base
        if pid is not None:
            last = self.pipe_last.get(pid)
            if last is not None:
                bound = last + self._pipes[pid].enqueue_time
                if bound > earliest:
                    earliest = bound
        for delta in self.dag.rho(ident):
            bound = self.issue[delta] + self.latency_of(delta)
            if bound > earliest:
                earliest = bound
        return earliest - base

    def push(self, ident: int, pid: Optional[int]) -> int:
        eta = self.peek_eta(ident, pid)
        issue = self.issue[self.order[-1]] + 1 + eta if self.order else 0
        self.order.append(ident)
        self.etas.append(eta)
        self.issue[ident] = issue
        self.chosen[ident] = pid
        self.total_nops += eta
        if pid is None:
            self._undo.append(None)
        else:
            self._undo.append((pid, self.pipe_last.get(pid)))
            self.pipe_last[pid] = issue
        return eta

    def pop(self) -> None:
        ident = self.order.pop()
        self.total_nops -= self.etas.pop()
        del self.issue[ident]
        del self.chosen[ident]
        saved = self._undo.pop()
        if saved is not None:
            pid, previous = saved
            if previous is None:
                del self.pipe_last[pid]
            else:
                self.pipe_last[pid] = previous

    def __len__(self) -> int:
        return len(self.order)


def schedule_block_multi(
    dag: DependenceDAG,
    machine: MachineDescription,
    options: SearchOptions = SearchOptions(),
    seed: Optional[Sequence[int]] = None,
    extra_incumbents: Optional[
        Sequence[Tuple[Sequence[int], Dict[int, Optional[int]]]]
    ] = None,
    telemetry: Optional[Telemetry] = None,
) -> MultiScheduleResult:
    """Optimal joint (order, pipeline assignment) search.

    Semantics mirror :func:`repro.sched.search.schedule_block`; the
    incumbent is seeded by pushing the list schedule with greedy
    (cheapest-now) pipeline choices plus the two static pinning policies,
    then the search branches over both the next instruction and its
    pipeline.  ``extra_incumbents`` — (order, assignment) pairs, e.g.
    schedules already found by the pinned core scheduler — are priced
    too (n Ω calls each), which guarantees the result never loses to
    them even when the joint search is curtailed.
    """
    start = time.perf_counter()
    n = len(dag)
    if seed is None:
        seed = list_schedule(dag)
    seed = tuple(seed)
    if sorted(seed) != sorted(dag.idents):
        raise ValueError("seed must be a permutation of the block's tuples")

    choices: Dict[int, Tuple[Optional[int], ...]] = {}
    for t in dag.block:
        pids = tuple(sorted(machine.pipelines_for(t.op)))
        choices[t.ident] = pids if pids else (None,)

    state = _MultiState(dag, machine)

    def price_seed(pick) -> Tuple[int, Tuple[int, ...], Tuple[int, ...], Dict[int, Optional[int]]]:
        """Push the seed under a pipeline-choice policy, snapshot, unwind."""
        for ident in seed:
            state.push(ident, pick(ident))
        snap = (
            state.total_nops,
            tuple(state.order),
            tuple(state.etas),
            dict(state.chosen),
        )
        for _ in range(n):
            state.pop()
        return snap

    # Seed incumbents (n omega calls each): greedy cheapest-now choices,
    # plus the two static pinning policies — the joint search must never
    # return anything worse than the best pinned schedule.
    incumbents = [
        price_seed(lambda i: min(choices[i], key=lambda p: state.peek_eta(i, p)))
    ]
    rr = round_robin_assignment(dag, machine)
    incumbents.append(price_seed(lambda i: rr[i]))
    first = first_pipeline_assignment(dag, machine)
    incumbents.append(price_seed(lambda i: first[i]))
    omega_calls = 3 * n
    for extra_order, extra_assignment in extra_incumbents or ():
        extra_order = tuple(extra_order)
        if sorted(extra_order) != sorted(dag.idents):
            raise ValueError("extra incumbent must cover the whole block")
        for ident in extra_order:
            state.push(ident, extra_assignment.get(ident))
        incumbents.append(
            (
                state.total_nops,
                tuple(state.order),
                tuple(state.etas),
                dict(state.chosen),
            )
        )
        for _ in range(n):
            state.pop()
        omega_calls += n
    best_nops, best_order, best_etas, best_assignment = min(
        incumbents, key=lambda snap: snap[0]
    )

    def _done(result: MultiScheduleResult) -> MultiScheduleResult:
        if telemetry is not None:
            telemetry.record_search(result)
        return result

    if n <= 1:
        return _done(
            MultiScheduleResult(
                best_order, best_etas, best_assignment, best_nops,
                omega_calls, True, time.perf_counter() - start,
                prune_counts=prune_counts(),
            )
        )

    seed_pos = {ident: pos for pos, ident in enumerate(seed)}
    successors = {i: tuple(dag.successors(i)) for i in dag.idents}
    # Admissible chain bound under *any* assignment: weight every tuple
    # by the smallest latency among its viable pipelines.
    min_latency: Dict[int, int] = {}
    for t in dag.block:
        pids = machine.pipelines_for(t.op)
        min_latency[t.ident] = (
            min(machine.pipeline(p).latency for p in pids)
            if pids
            else UNPIPELINED_LATENCY
        )
    chain_below: Dict[int, int] = {}
    for t in reversed(dag.block.tuples):
        succ = successors[t.ident]
        chain_below[t.ident] = (
            0
            if not succ
            else max(min_latency[t.ident] + chain_below[s] for s in succ)
        )
    indegree = {i: len(dag.rho(i)) for i in dag.idents}
    ready: List[int] = [i for i in dag.idents if indegree[i] == 0]
    trivial = {
        i: (choices[i] == (None,) and indegree[i] == 0) for i in dag.idents
    }
    pipes_by_ident = {p.ident: p for p in machine.pipelines}
    # Two pipelines are true twins only when the *same* operation classes
    # can use them — otherwise collapsing a choice could hide a schedule
    # where the other pipe stays free for a different op class.
    usable_by = {
        p.ident: frozenset(
            op for op, pids in machine.op_map.items() if p.ident in pids
        )
        for p in machine.pipelines
    }

    curtail = options.curtail
    alpha_beta = options.alpha_beta
    equivalence = options.equivalence_prune
    deadline = None if options.time_limit is None else start + options.time_limit
    completed = True
    n_legality = n_bounds = n_equivalence = n_alpha_beta = 0
    n_curtail = n_timeout = 0
    timed_out = False

    def pipeline_choices(ident: int) -> List[Optional[int]]:
        """Viable pipelines, cheapest-first, symmetric idle twins collapsed."""
        opts = choices[ident]
        if len(opts) == 1:
            return list(opts)
        seen_signature = set()
        ranked = sorted(opts, key=lambda p: state.peek_eta(ident, p))
        out: List[Optional[int]] = []
        for pid in ranked:
            pipe = pipes_by_ident[pid]
            signature = (
                usable_by[pid],
                pipe.latency,
                pipe.enqueue_time,
                state.pipe_last.get(pid),
            )
            if signature in seen_signature:
                continue  # identical pipe with identical availability
            seen_signature.add(signature)
            out.append(pid)
        return out

    def candidates() -> List[int]:
        nonlocal n_equivalence
        picked = sorted(ready, key=seed_pos.__getitem__)
        if equivalence and len(picked) > 1:
            filtered: List[int] = []
            seen_trivial = False
            for ident in picked:
                if trivial[ident]:
                    if seen_trivial:
                        n_equivalence += 1
                        continue
                    seen_trivial = True
                filtered.append(ident)
            return filtered
        return picked

    def rec(remaining: int) -> None:
        nonlocal best_nops, best_order, best_etas, best_assignment, omega_calls
        nonlocal n_legality, n_bounds, n_alpha_beta, n_curtail, n_timeout
        nonlocal timed_out
        cands = candidates()
        n_legality += remaining - len(ready)
        if state.order and alpha_beta:
            # Admissible lower bound on NOPs any completion must add: the
            # cheapest-pipeline critical chain below each ready candidate
            # against the remaining issue slots.
            lb = 0
            for i in cands:
                eta = min(state.peek_eta(i, p) for p in choices[i])
                gap = 1 + eta + chain_below[i] - remaining
                if gap > lb:
                    lb = gap
            if state.total_nops + lb >= best_nops:
                n_bounds += 1
                return
        for ident in cands:
            for pid in pipeline_choices(ident):
                if omega_calls >= curtail:
                    n_curtail += 1
                    raise _Curtailed
                if deadline is not None and time.perf_counter() > deadline:
                    n_timeout += 1
                    timed_out = True
                    raise _Curtailed
                omega_calls += 1
                state.push(ident, pid)
                try:
                    if len(state) == n:
                        if state.total_nops < best_nops:
                            best_nops = state.total_nops
                            best_order = tuple(state.order)
                            best_etas = tuple(state.etas)
                            best_assignment = dict(state.chosen)
                    elif alpha_beta and state.total_nops >= best_nops:
                        n_alpha_beta += 1
                    else:
                        ready.remove(ident)
                        opened = []
                        for succ in successors[ident]:
                            indegree[succ] -= 1
                            if indegree[succ] == 0:
                                ready.append(succ)
                                opened.append(succ)
                        try:
                            rec(remaining - 1)
                        finally:
                            for succ in opened:
                                ready.remove(succ)
                            for succ in successors[ident]:
                                indegree[succ] += 1
                            ready.append(ident)
                finally:
                    state.pop()

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n * 10 + 1000))
    try:
        rec(n)
    except _Curtailed:
        completed = False
    finally:
        sys.setrecursionlimit(old_limit)

    return _done(
        MultiScheduleResult(
            order=best_order,
            etas=best_etas,
            assignment=best_assignment,
            total_nops=best_nops,
            omega_calls=omega_calls,
            completed=completed,
            elapsed_seconds=time.perf_counter() - start,
            timed_out=timed_out,
            prune_counts=prune_counts(
                legality=n_legality,
                bounds=n_bounds,
                equivalence=n_equivalence,
                alpha_beta=n_alpha_beta,
                curtail=n_curtail,
                timeout=n_timeout,
            ),
        )
    )
