"""The optimal pipeline scheduler — section 4.2.3's pruned search.

A branch-and-bound search over dependence-legal schedules, seeded with the
list schedule and pruned by optimality-preserving criteria.  The paper's
own prunes:

* **Legality** (steps [5a]/[5b]): only instructions whose whole ``rho``
  set is already in the partial schedule Φ are candidates.  We maintain
  an exact ready set, which realizes both the quick approximate check on
  ``earliest``/``latest`` and the real test ``rho(xi) ⊆ Φ`` at once.
* **Equivalence** (step [5c]): the paper skips a swap when both
  instructions use no pipeline and have no predecessors.  Applied
  naively per candidate set that is *unsound* — two such instructions
  with different consumers are not interchangeable (scheduling Const A
  here may admit a zero-NOP completion that Const B does not).  We
  implement the sound refinement: candidates with no pipeline, no
  predecessors and *identical successor sets* are provably
  interchangeable, and only the first is tried (DESIGN.md §4).
* **Alpha-beta / branch-and-bound** (step [6]): a partial schedule is
  extended only while ``mu(Φ) < mu(pi)`` — NOPs never decrease as a
  schedule grows.  Strict inequality prunes equal-cost subtrees without
  sacrificing optimality (completing them could only tie).
* **Curtail point λ** (steps [2]/[4]): the search stops after λ Ω calls;
  the best schedule found so far is returned and flagged as possibly
  suboptimal (condition [2] of section 2.3).

Plus three further optimality-preserving prunes in the same spirit
("the search space is pruned dramatically, but the optimal solution will
never be pruned"), each individually toggleable for the ablation
experiments:

* **Heuristic incumbents**: besides pricing the list-schedule seed, the
  pipeline-aware Gross/greedy baselines are priced and the cheapest
  becomes the starting incumbent — a tighter α-β bound from the start.
* **Admissible lower bounds**: a node is abandoned when
  ``mu(Φ) + LB ≥ mu(pi)`` for two cheap bounds on the NOPs any
  completion must still add: the latency-weighted critical path of the
  unscheduled region (each ready candidate's earliest issue plus its
  downstream chain, against the remaining issue slots), and per-pipeline
  enqueue capacity (k pending users of a pipeline cannot issue closer
  than its enqueue time).  Evaluated at the root, these sometimes prove
  the incumbent optimal before any search ("instant proof").
* **Dominance memoization**: two partial schedules with the same
  scheduled *set* and the same timing interface — relative pipeline
  busy times plus the clamped ready-time contributions of recently
  issued producers that still have unscheduled consumers — admit exactly
  the same completions at the same future cost; a node whose prefix NOP
  count is no better than a previously expanded twin is pruned.

Ω-call accounting
-----------------
``omega_calls`` counts every NOP-insertion evaluation over a schedule or
schedule extension: ``n`` per incumbent-seeding schedule priced (step
[1]) plus one per candidate extension examined (step [4] increments Λ
once per considered swap).  This matches the magnitudes of the paper's
Table 1 "Proposed Pruning Calls" column.

Candidate ordering tries cheapest extensions first (fewest immediate
NOPs, then seed-schedule position), so the search deepens along good
schedules early — this is what makes the alpha-beta bound effective.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from ..ir.block import BasicBlock
from ..ir.dag import DependenceDAG
from ..ir.loop import LoopBlock
from ..machine.machine import MachineDescription
from ..telemetry import Telemetry, prune_counts
from .heuristics import greedy_schedule, gross_schedule
from .list_scheduler import list_schedule, program_order
from .nop_insertion import (
    IncrementalTimingState,
    InitialConditions,
    PipelineAssignment,
    ScheduleTiming,
    SigmaResolver,
    compute_timing,
)

#: Default curtail point; the paper found λ on the order of 1,000
#: sufficient for the vast majority of blocks and used values "always
#: large relative to the number of items searched for an optimal search
#: of an average block".
DEFAULT_CURTAIL = 50_000


@dataclass(frozen=True)
class SearchOptions:
    """Tuning knobs of the branch-and-bound search.

    The boolean flags exist for the ablation experiments; disabling any
    of them never changes the optimum found (every prune is
    optimality-preserving), only the work done.  ``SearchOptions.paper()``
    is the paper-faithful configuration (α-β + equivalence only);
    the default enables everything.
    """

    curtail: int = DEFAULT_CURTAIL
    alpha_beta: bool = True
    equivalence_prune: bool = True
    lower_bound_prune: bool = True
    dominance_prune: bool = True
    heuristic_seeds: bool = True
    seed_with_list_schedule: bool = True
    cheapest_first: bool = True  # candidate ordering by immediate eta
    max_memo_entries: int = 1_000_000
    time_limit: Optional[float] = None  # seconds; None = unlimited
    #: Register-pressure budget: schedules whose linear-scan pressure
    #: would exceed this are treated as illegal.  Section 3.1 creates
    #: spill code so *program order* fits the register file; this
    #: constraint keeps the search from reordering past the budget, so
    #: post-scheduling allocation never needs new spills.  ``None``
    #: (default) assumes "always enough registers", as the paper's
    #: simulations do.
    max_live: Optional[int] = None
    #: Which DFS implementation runs the search: ``"fast"`` (the flattened
    #: array engine in ``repro.sched.core`` — bitmask ready sets, explicit
    #: stack, in-place do/undo), ``"vector"`` (the same engine with NumPy
    #: batch kernels over the flat arrays; degrades to ``"fast"`` with a
    #: one-line notice when NumPy is absent), ``"native"`` (the same DFS
    #: compiled to C in ``repro.native`` and bound through ctypes;
    #: degrades to ``"fast"`` with a one-line notice when no C compiler
    #: is available) or ``"reference"`` (the readable recursive
    #: formulation below).  All four are bit-for-bit identical in every
    #: ``SearchResult`` field except ``elapsed_seconds``; the reference
    #: is kept for ablation and differential testing.
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.curtail < 1:
            raise ValueError("curtail point must be positive")
        if self.time_limit is not None and self.time_limit <= 0:
            raise ValueError("time limit must be positive")
        if self.engine not in ("fast", "reference", "vector", "native"):
            raise ValueError(
                f"unknown search engine {self.engine!r} "
                "(expected 'fast', 'reference', 'vector' or 'native')"
            )
        if self.max_memo_entries < 0:
            raise ValueError("max_memo_entries must be non-negative")
        if self.max_live is not None and self.max_live < 3:
            raise ValueError(
                "max_live must be at least 3 (a binary operation keeps "
                "three values live at once)"
            )

    @classmethod
    def paper(cls, curtail: int = DEFAULT_CURTAIL) -> "SearchOptions":
        """The prune set exactly as published (sections 4.2.3 and 2.3),
        with 5c in its sound refinement."""
        return cls(
            curtail=curtail,
            alpha_beta=True,
            equivalence_prune=True,
            lower_bound_prune=False,
            dominance_prune=False,
            heuristic_seeds=False,
            cheapest_first=False,
        )

    def with_curtail(self, curtail: int) -> "SearchOptions":
        return replace(self, curtail=curtail)


def unsupported_backend_option(backend: str, field_name: str) -> ValueError:
    """Structured error for a request field a backend cannot honor.

    Every unsupported backend/option combination raises through here so
    the message shape is uniform and the offending field is carried as
    machine-readable attributes (``error.backend`` / ``error.field``).
    """
    error = ValueError(
        f"the {backend!r} backend does not support {field_name!r}; "
        "use backend='search'"
    )
    error.backend = backend
    error.field = field_name
    return error


@dataclass(frozen=True)
class ScheduleRequest:
    """One self-contained scheduling problem: what to schedule, on which
    machine, under which configuration.

    The unified request form accepted by :func:`schedule_block`, the new
    loop entry :func:`repro.sched.pipelining.schedule_loop`, and the
    service fingerprint path
    (:func:`repro.service.fingerprint.fingerprint_problem`) — one object
    to build, log, and hand around instead of a sprawl of keyword
    arguments.  The legacy keyword signatures remain as thin wrappers
    that build a request internally; nothing is deprecated.

    ``problem`` is a :class:`~repro.ir.dag.DependenceDAG` or
    :class:`~repro.ir.block.BasicBlock` for block scheduling, or a
    :class:`~repro.ir.loop.LoopBlock` for modulo loop scheduling.
    """

    problem: Union[DependenceDAG, BasicBlock, LoopBlock]
    machine: MachineDescription
    options: SearchOptions = SearchOptions()
    backend: str = "search"
    engine: Optional[str] = None
    assignment: Optional[PipelineAssignment] = None
    seed: Optional[Tuple[int, ...]] = None
    initial_conditions: Optional[InitialConditions] = None
    ilp_options: Optional[object] = None

    def __post_init__(self) -> None:
        if not isinstance(
            self.problem, (DependenceDAG, BasicBlock, LoopBlock)
        ):
            raise TypeError(
                "problem must be a DependenceDAG, BasicBlock or LoopBlock, "
                f"not {type(self.problem).__name__}"
            )
        if self.backend not in ("search", "ilp"):
            raise ValueError(
                f"unknown scheduling backend {self.backend!r} "
                "(expected 'search' or 'ilp')"
            )
        if self.engine is not None and self.engine not in (
            "fast", "reference", "vector", "native",
        ):
            raise ValueError(
                f"unknown search engine {self.engine!r} "
                "(expected 'fast', 'reference', 'vector' or 'native')"
            )
        if self.seed is not None:
            object.__setattr__(self, "seed", tuple(self.seed))

    @property
    def is_loop(self) -> bool:
        return isinstance(self.problem, LoopBlock)

    @cached_property
    def dag(self) -> DependenceDAG:
        """The problem as a dependence DAG (built on demand from a block;
        a loop request exposes its *body* DAG)."""
        if isinstance(self.problem, DependenceDAG):
            return self.problem
        if isinstance(self.problem, LoopBlock):
            return DependenceDAG(self.problem.body)
        return DependenceDAG(self.problem)

    @property
    def loop(self) -> LoopBlock:
        if not isinstance(self.problem, LoopBlock):
            raise TypeError("this request's problem is not a LoopBlock")
        return self.problem


@runtime_checkable
class ScheduleOutcome(Protocol):
    """The protocol every scheduling result satisfies.

    :class:`SearchResult`, :class:`repro.ilp.backend.IlpSearchResult`
    and :class:`repro.sched.pipelining.ModuloScheduleResult` all expose:

    * ``schedule`` — the winning :class:`ScheduleTiming` (for a loop
      result, the steady-state kernel window);
    * ``objective`` — the minimized integer (total NOPs for blocks, the
      initiation interval for loops);
    * ``provenance`` — which backend produced it (``"search"``,
      ``"ilp"``, ``"modulo"``);
    * ``elapsed_seconds`` / ``completed`` — wall time and whether the
      result is provably optimal.

    ``isinstance(result, ScheduleOutcome)`` works at runtime.
    """

    schedule: ScheduleTiming
    objective: int
    provenance: str
    elapsed_seconds: float
    completed: bool


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one optimal-scheduling run."""

    best: ScheduleTiming
    initial: ScheduleTiming
    omega_calls: int
    completed: bool  # condition [1]: search exhausted, best is optimal
    elapsed_seconds: float
    improvements: int  # times the incumbent was replaced
    proved_by_bound: bool = False  # incumbent matched the root lower bound
    timed_out: bool = False  # truncated by the wall-clock deadline
    #: Dominance-memo entries evicted (FIFO) to honor ``max_memo_entries``.
    memo_evicted: int = 0
    #: Prune events by kind (see ``repro.telemetry.PRUNE_KINDS``).
    prune_counts: Mapping[str, int] = field(default_factory=dict)

    #: Backend provenance (:class:`ScheduleOutcome` protocol).  The ILP
    #: subclass overrides this with ``"ilp"``, the modulo scheduler's
    #: result carries ``"modulo"``.
    provenance = "search"

    @property
    def optimal(self) -> bool:
        """Provably optimal (alias of ``completed``)."""
        return self.completed

    @property
    def schedule(self) -> ScheduleTiming:
        """The winning timing (:class:`ScheduleOutcome` protocol; alias
        of ``best``)."""
        return self.best

    @property
    def objective(self) -> int:
        """The minimized integer — total NOPs (:class:`ScheduleOutcome`
        protocol; alias of ``final_nops``)."""
        return self.best.total_nops

    @property
    def initial_nops(self) -> int:
        return self.initial.total_nops

    @property
    def final_nops(self) -> int:
        return self.best.total_nops

    def __str__(self) -> str:
        status = "optimal" if self.completed else "truncated"
        return (
            f"SearchResult({status}, nops {self.initial_nops} -> "
            f"{self.final_nops}, {self.omega_calls} omega calls)"
        )


def root_lower_bound(
    dag: DependenceDAG,
    machine: MachineDescription,
    assignment: Optional[Mapping[int, Optional[int]]] = None,
) -> int:
    """Admissible lower bound on any schedule's NOP count (the "root"
    bound the search tests its first incumbent against).

    The larger of the latency-weighted critical path (the longest
    ``1 + latency``-chain must fit in ``n`` issue slots plus stalls) and
    per-pipeline enqueue capacity (``k`` users of a pipeline cannot
    issue closer than its enqueue time).  Both ignore carry-in
    conditions, which can only raise the true optimum, so the bound
    stays admissible for every block.  Exposed so the verify oracle can
    record the bound that was active when a search was curtailed.
    """
    n = len(dag)
    if n == 0:
        return 0
    resolver = SigmaResolver(dag, machine, assignment)
    chain_below: Dict[int, int] = {}
    for t in reversed(dag.block.tuples):
        succ = tuple(dag.successors(t.ident))
        chain_below[t.ident] = (
            0
            if not succ
            else max(resolver.latency(t.ident) + chain_below[s] for s in succ)
        )
    bound = max(0, max(1 + chain_below[i] for i in dag.idents) - n)
    enqueue_of = {p.ident: p.enqueue_time for p in machine.pipelines}
    pipe_users: Dict[int, int] = {}
    for i in dag.idents:
        pid = resolver.sigma(i)
        if pid is not None:
            pipe_users[pid] = pipe_users.get(pid, 0) + 1
    for pid, k in pipe_users.items():
        bound = max(bound, ((k - 1) * enqueue_of[pid] + 1) - n)
    return bound


class _Curtailed(Exception):
    """Internal unwind signal: the curtail point (or time limit) was hit."""


def schedule_block(
    dag: Union[DependenceDAG, ScheduleRequest],
    machine: Optional[MachineDescription] = None,
    options: SearchOptions = SearchOptions(),
    assignment: Optional[PipelineAssignment] = None,
    seed: Optional[Sequence[int]] = None,
    initial_conditions: Optional[InitialConditions] = None,
    telemetry: Optional[Telemetry] = None,
    engine: Optional[str] = None,
    backend: str = "search",
    ilp_options=None,
) -> SearchResult:
    """Find a minimum-NOP schedule of ``dag`` for ``machine``.

    Parameters
    ----------
    dag:
        Dependence DAG of the block to schedule — or a complete
        :class:`ScheduleRequest`, in which case every other
        problem-defining parameter must stay at its default (only
        ``telemetry`` may be combined with a request).
    machine:
        Target machine description; must be deterministic (every
        operation on at most one pipeline) unless ``assignment`` pins
        each tuple's pipeline (used by the multi-pipeline extension).
    options:
        Search configuration (curtail point, prune toggles).
    assignment:
        Optional per-tuple pipeline assignment.
    seed:
        Initial schedule.  Defaults to the list schedule (or program
        order when ``options.seed_with_list_schedule`` is off).
    initial_conditions:
        Carry-in pipeline/memory state from preceding blocks (footnote 1,
        see ``repro.sched.interblock``).  Defaults to an idle machine.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` registry; the
        search's prune counters and wall time are folded into it.
    engine:
        ``"fast"``, ``"vector"``, ``"native"`` or ``"reference"``;
        overrides ``options.engine``.  All engines return bit-for-bit
        identical results (everything except ``elapsed_seconds``);
        ``"vector"`` degrades to ``"fast"`` when NumPy is unavailable
        and ``"native"`` degrades to ``"fast"`` when no C compiler is
        available (a one-line stderr notice each, once per process).
        See :mod:`repro.sched.core` and :mod:`repro.native`.
    backend:
        ``"search"`` (this module's branch-and-bound over orders) or
        ``"ilp"`` (the time-indexed ILP witness in :mod:`repro.ilp`,
        which proves the incumbent optimal or beats it and returns an
        ``IlpSearchResult`` carrying its LP dual bound).  The ILP
        backend supports neither an ``engine`` override nor
        ``max_live``; both raise the structured ``ValueError`` of
        :func:`unsupported_backend_option`, naming the field.
    ilp_options:
        Optional :class:`repro.ilp.IlpOptions` budgets; only meaningful
        with ``backend="ilp"``.

    Returns
    -------
    SearchResult
        ``completed=True`` means the search exhausted the pruned space
        (or the incumbent met an admissible lower bound) and ``best`` is
        provably optimal; otherwise the curtail point or time limit
        truncated the search and ``best`` is the incumbent.
    """
    start = time.perf_counter()
    if isinstance(dag, ScheduleRequest):
        request = dag
        overridden = [
            name
            for name, value, default in (
                ("machine", machine, None),
                ("options", options, SearchOptions()),
                ("assignment", assignment, None),
                ("seed", seed, None),
                ("initial_conditions", initial_conditions, None),
                ("engine", engine, None),
                ("backend", backend, "search"),
                ("ilp_options", ilp_options, None),
            )
            if value != default
        ]
        if overridden:
            raise ValueError(
                "pass either a ScheduleRequest or the legacy keyword "
                f"arguments, not both (also given: {', '.join(overridden)})"
            )
        if request.is_loop:
            raise TypeError(
                "this request carries a LoopBlock; use "
                "repro.sched.pipelining.schedule_loop for loop problems"
            )
        dag = request.dag
        machine = request.machine
        options = request.options
        assignment = request.assignment
        seed = request.seed
        initial_conditions = request.initial_conditions
        engine = request.engine
        backend = request.backend
        ilp_options = request.ilp_options
    elif isinstance(dag, BasicBlock):
        dag = DependenceDAG(dag)
    if machine is None:
        raise TypeError(
            "machine is required unless a ScheduleRequest is passed"
        )
    n = len(dag)
    if backend not in ("search", "ilp"):
        raise ValueError(
            f"unknown scheduling backend {backend!r} (expected 'search' or 'ilp')"
        )
    if backend == "ilp" and options.max_live is not None:
        raise unsupported_backend_option("ilp", "max_live")
    if backend == "ilp" and engine is not None:
        raise unsupported_backend_option("ilp", "engine")
    engine_name = options.engine if engine is None else engine
    if engine_name not in ("fast", "reference", "vector", "native"):
        raise ValueError(
            f"unknown search engine {engine_name!r} "
            "(expected 'fast', 'reference', 'vector' or 'native')"
        )
    if engine_name in ("vector", "native"):
        from .core import resolve_engine

        engine_name = resolve_engine(engine_name, telemetry=telemetry)

    def _done(result: SearchResult) -> SearchResult:
        if telemetry is not None:
            telemetry.record_search(result)
        return result

    resolver = SigmaResolver(dag, machine, assignment)
    initial = (
        initial_conditions if initial_conditions is not None else InitialConditions()
    )

    budget = options.max_live

    def fits_budget(order) -> bool:
        if budget is None:
            return True
        from ..regalloc.liveness import max_live as pressure_of

        return pressure_of(dag.block, order) <= budget

    if seed is None:
        seed = (
            list_schedule(dag)
            if options.seed_with_list_schedule
            else program_order(dag)
        )
        if not fits_budget(seed):
            # Program order is the one schedule the spill pre-pass
            # guarantees to fit the register budget (section 3.1).
            seed = program_order(dag)
    seed = tuple(seed)
    if sorted(seed) != sorted(dag.idents):
        raise ValueError("seed must be a permutation of the block's tuples")
    if not fits_budget(seed):
        raise ValueError(
            f"seed schedule needs more than max_live={budget} registers; "
            "run the spill pre-pass (repro.regalloc.insert_spill_code) first"
        )

    if backend == "ilp":
        from ..ilp.backend import run_ilp_search

        return _done(
            run_ilp_search(
                dag, machine, resolver, options, ilp_options, initial,
                seed, assignment, start,
            )
        )

    # ------------------------------------------------------------------
    # Engine dispatch: from here on the flattened array engine and the
    # recursive reference below run the *same* search — identical seed
    # pricing, incumbents, candidate order, prune decisions, Ω accounting
    # and memo policy — so every field of the result except
    # elapsed_seconds is bit-for-bit equal.
    # ------------------------------------------------------------------
    if engine_name == "fast":
        from .core import run_fast_search

        return _done(
            run_fast_search(
                dag, machine, resolver, options, initial, seed,
                fits_budget, start,
            )
        )
    if engine_name == "vector":
        from .core import run_vector_search

        return _done(
            run_vector_search(
                dag, machine, resolver, options, initial, seed,
                fits_budget, start,
            )
        )
    if engine_name == "native":
        from .core import run_native_search

        return _done(
            run_native_search(
                dag, machine, resolver, options, initial, seed,
                fits_budget, start,
            )
        )

    # Step [1]: price the seed schedule (n omega calls), plus the
    # heuristic incumbents when enabled.
    seed_timing = compute_timing(dag, seed, machine, assignment, initial=initial)
    omega_calls = n
    best = seed_timing
    improvements = 0
    if options.heuristic_seeds and n > 1:
        for heuristic in (gross_schedule, greedy_schedule):
            candidate = heuristic(dag, machine, assignment, initial)
            omega_calls += n
            if candidate.total_nops < best.total_nops and fits_budget(
                candidate.order
            ):
                best = candidate
                improvements += 1

    if n <= 1:
        return _done(
            SearchResult(
                best,
                seed_timing,
                omega_calls,
                True,
                time.perf_counter() - start,
                0,
                prune_counts=prune_counts(),
            )
        )

    # ------------------------------------------------------------------
    # Static structure shared by the bounds and the DFS.
    # ------------------------------------------------------------------
    idents = dag.idents
    successors: Dict[int, Tuple[int, ...]] = {
        i: tuple(dag.successors(i)) for i in idents
    }
    # Latency-weighted downstream chain: any consumer chain below z forces
    # the last issue to trail z's issue by at least chain_below[z].
    chain_below: Dict[int, int] = {}
    for t in reversed(dag.block.tuples):
        succ = successors[t.ident]
        chain_below[t.ident] = (
            0
            if not succ
            else max(resolver.latency(t.ident) + chain_below[s] for s in succ)
        )
    enqueue_of = {p.ident: p.enqueue_time for p in machine.pipelines}
    pipe_users: Dict[int, int] = {}
    for i in idents:
        pid = resolver.sigma(i)
        if pid is not None:
            pipe_users[pid] = pipe_users.get(pid, 0) + 1
    max_latency = max(
        (p.latency for p in machine.pipelines), default=1
    )

    # ------------------------------------------------------------------
    # Root lower bound: can the incumbent already be proven optimal?
    # ------------------------------------------------------------------
    if options.lower_bound_prune:
        root_lb = max(0, max(1 + chain_below[i] for i in idents) - n)
        for pid, k in pipe_users.items():
            root_lb = max(root_lb, ((k - 1) * enqueue_of[pid] + 1) - n)
        if best.total_nops <= root_lb:
            return _done(
                SearchResult(
                    best,
                    seed_timing,
                    omega_calls,
                    True,
                    time.perf_counter() - start,
                    improvements,
                    proved_by_bound=True,
                    prune_counts=prune_counts(bounds=1),
                )
            )

    # ------------------------------------------------------------------
    # DFS state (reference engine).
    # ------------------------------------------------------------------
    seed_pos = {ident: pos for pos, ident in enumerate(seed)}
    state = IncrementalTimingState(dag, resolver, initial)
    indegree = {i: len(dag.rho(i)) for i in idents}
    ready: List[int] = [i for i in idents if indegree[i] == 0]
    # Sound 5c refinement: interchangeable candidates share no pipeline,
    # no predecessors, and identical successor sets.
    trivial: Dict[int, Optional[FrozenSet[int]]] = {
        i: (
            frozenset(successors[i])
            if resolver.sigma(i) is None and indegree[i] == 0
            else None
        )
        for i in idents
    }
    bit = {ident: 1 << k for k, ident in enumerate(idents)}
    memo: Dict[tuple, int] = {}
    # Carry-in variable-ready bounds (footnote 1) decay with time, so the
    # dominance key must carry their residuals (see interface_key).
    var_bounds = state._var_bound

    # Register-pressure tracking (only when a budget is set): mirrors the
    # linear-scan allocator — operands free at their last use, before the
    # destination register is claimed.
    block_by_ident = dag.block.by_ident
    operand_sets: Dict[int, tuple] = {
        i: tuple(set(block_by_ident(i).value_refs)) for i in idents
    }
    consumers_left: Dict[int, int] = {i: 0 for i in idents}
    for i in idents:
        for r in operand_sets[i]:
            consumers_left[r] += 1
    produces: Dict[int, bool] = {
        i: block_by_ident(i).op.produces_value for i in idents
    }
    live_count = 0  # values defined, with consumers still unscheduled

    def pressure_peak(ident: int) -> int:
        """Register pressure at the instant ``ident`` would execute next."""
        freed = sum(1 for r in operand_sets[ident] if consumers_left[r] == 1)
        return live_count - freed + (1 if produces[ident] else 0)

    curtail = options.curtail
    alpha_beta = options.alpha_beta
    equivalence = options.equivalence_prune
    lower_bounds = options.lower_bound_prune
    dominance = options.dominance_prune
    cheapest_first = options.cheapest_first
    max_memo = options.max_memo_entries
    deadline = (
        None if options.time_limit is None else start + options.time_limit
    )

    best_nops = best.total_nops
    best_timing = best
    peek = state.peek_eta
    issue_of = state._issue
    pipe_last = state._pipe_last

    # Prune-event counters (plain locals in the hot loop; flushed into
    # the SearchResult / telemetry registry once, at the end).
    n_legality = n_bounds = n_equivalence = n_alpha_beta = 0
    n_dominance = n_curtail = n_timeout = n_memo_evicted = 0
    timed_out = False

    def interface_key(mask: int) -> tuple:
        """Timing-relevant state, relative to the last issue time.

        Two prefixes with equal keys admit identical completions at
        identical future cost (see module docstring); only recently
        issued producers can still constrain the future, so the scan is
        bounded by the machine's maximum latency.
        """
        tl = issue_of[state._order[-1]]
        pipes = tuple(
            sorted(
                (pid, last - tl)
                for pid, last in pipe_last.items()
                if last - tl + enqueue_of[pid] > 1
            )
        )
        dangling: List[Tuple[int, int]] = []
        for ident in state._order[-(max_latency + 1) :]:
            slack = issue_of[ident] + resolver.latency(ident) - (tl + 1)
            if slack <= 0:
                continue
            for s in successors[ident]:
                if not (mask & bit[s]):
                    dangling.append((ident, slack))
                    break
        dangling.sort()
        residual_vars: Tuple[Tuple[int, int], ...] = ()
        if var_bounds:
            residual_vars = tuple(
                sorted(
                    (ident, bound - (tl + 1))
                    for ident, bound in var_bounds.items()
                    if not (mask & bit[ident]) and bound > tl + 1
                )
            )
        return (mask, pipes, tuple(dangling), residual_vars)

    def rec(remaining: int, mask: int) -> None:
        nonlocal best_nops, best_timing, improvements, omega_calls, live_count
        nonlocal n_legality, n_bounds, n_equivalence, n_alpha_beta
        nonlocal n_dominance, n_curtail, n_timeout, n_memo_evicted, timed_out
        if cheapest_first:
            cands = sorted(ready, key=lambda i: (peek(i), seed_pos[i]))
        else:
            cands = sorted(ready, key=seed_pos.__getitem__)
        # Steps [5a]/[5b]: unscheduled instructions whose rho set is not
        # yet contained in Phi are not candidates at this node.
        n_legality += remaining - len(cands)

        if state._order:
            mu = state.total_nops
            if lower_bounds:
                lb = 0
                for i in cands:
                    gap = 1 + peek(i) + chain_below[i] - remaining
                    if gap > lb:
                        lb = gap
                tl = issue_of[state._order[-1]]
                for pid, k in pipe_users.items():
                    if k:
                        last = pipe_last.get(pid)
                        base = (
                            last + enqueue_of[pid] if last is not None else tl + 1
                        )
                        gap = (base + (k - 1) * enqueue_of[pid]) - (tl + remaining)
                        if gap > lb:
                            lb = gap
                if mu + lb >= best_nops:
                    n_bounds += 1
                    return
            if dominance:
                key = interface_key(mask)
                prev = memo.get(key)
                if prev is not None:
                    if mu >= prev:
                        n_dominance += 1
                        return
                    memo[key] = mu  # tighter prefix: overwrite in place
                elif max_memo > 0:
                    if len(memo) >= max_memo:
                        # FIFO eviction (dict insertion order): bounded
                        # memory, graceful degradation — dominance only
                        # ever prunes, so optimality is unaffected.
                        memo.pop(next(iter(memo)))
                        n_memo_evicted += 1
                    memo[key] = mu

        if equivalence and len(cands) > 1:
            seen: set = set()
            filtered: List[int] = []
            for i in cands:
                sig = trivial[i]
                if sig is not None:
                    if sig in seen:
                        # Provably interchangeable with an earlier
                        # candidate at this node.
                        n_equivalence += 1
                        continue
                    seen.add(sig)
                filtered.append(i)
            cands = filtered

        for ident in cands:
            if budget is not None and pressure_peak(ident) > budget:
                continue  # would not be allocatable: treat as illegal
            # Step [4]: curtail-point truncation.
            if omega_calls >= curtail:
                n_curtail += 1
                raise _Curtailed
            if deadline is not None and time.perf_counter() > deadline:
                n_timeout += 1
                timed_out = True
                raise _Curtailed
            omega_calls += 1
            state.push(ident)
            pid = resolver.sigma(ident)
            if pid is not None:
                pipe_users[pid] -= 1
            if budget is not None:
                for r in operand_sets[ident]:
                    consumers_left[r] -= 1
                    if consumers_left[r] == 0:
                        live_count -= 1
                if produces[ident] and consumers_left[ident] > 0:
                    live_count += 1
            try:
                if remaining == 1:
                    # Step [3]: complete schedule; adopt if strictly better.
                    if state.total_nops < best_nops:
                        best_nops = state.total_nops
                        best_timing = state.snapshot()
                        improvements += 1
                elif alpha_beta and state.total_nops >= best_nops:
                    # Step [6]: mu never decreases as a schedule grows,
                    # so this prefix cannot beat the incumbent.
                    n_alpha_beta += 1
                else:
                    # Step [6]: extend only prefixes that can still win.
                    ready.remove(ident)
                    opened = []
                    for succ in successors[ident]:
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            ready.append(succ)
                            opened.append(succ)
                    try:
                        rec(remaining - 1, mask | bit[ident])
                    finally:
                        for succ in opened:
                            ready.remove(succ)
                        for succ in successors[ident]:
                            indegree[succ] += 1
                        ready.append(ident)
            finally:
                if budget is not None:
                    if produces[ident] and consumers_left[ident] > 0:
                        live_count -= 1
                    for r in operand_sets[ident]:
                        if consumers_left[r] == 0:
                            live_count += 1
                        consumers_left[r] += 1
                if pid is not None:
                    pipe_users[pid] += 1
                state.pop()

    completed = True
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n * 10 + 1000))
    try:
        rec(n, 0)
    except _Curtailed:
        completed = False
    finally:
        sys.setrecursionlimit(old_limit)

    return _done(
        SearchResult(
            best=best_timing,
            initial=seed_timing,
            omega_calls=omega_calls,
            completed=completed,
            elapsed_seconds=time.perf_counter() - start,
            improvements=improvements,
            timed_out=timed_out,
            memo_evicted=n_memo_evicted,
            prune_counts=prune_counts(
                legality=n_legality,
                bounds=n_bounds,
                equivalence=n_equivalence,
                alpha_beta=n_alpha_beta,
                curtail=n_curtail,
                timeout=n_timeout,
                dominance=n_dominance,
            ),
        )
    )
