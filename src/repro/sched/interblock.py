"""Inter-block scheduling — the paper's footnote 1.

*"Interactions between adjacent blocks can be managed without major
modification of the basic block schedules, essentially by modifying the
initial conditions in the analysis for each block."*

This module supplies exactly those initial conditions and a driver that
threads them through a straight-line sequence of basic blocks:

* :class:`InitialConditions` — per-pipeline earliest-enqueue cycles (an
  operation issued near the end of the previous block can keep its
  pipeline busy into this one) and per-variable earliest-read cycles
  (for memory systems whose stores take observable time — e.g. the
  CARP-style interconnection-network accesses the paper cites).
* :func:`carry_out` — the conditions a scheduled block hands its
  successor.
* :func:`schedule_sequence` — optimally schedule each block of a
  sequence under the conditions left by its predecessors; the resulting
  concatenated instruction stream is hazard-free by construction
  (property-tested against the simulator).

Scheduling remains per-block (no instruction crosses a block boundary),
exactly as the footnote prescribes; only the *analysis* sees the
neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.block import BasicBlock
from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from .nop_insertion import InitialConditions, ScheduleTiming, SigmaResolver
from .search import SearchOptions, SearchResult, schedule_block


def carry_out(
    timing: ScheduleTiming,
    dag: DependenceDAG,
    machine: MachineDescription,
    resolver: Optional[SigmaResolver] = None,
) -> InitialConditions:
    """The initial conditions a scheduled block leaves for its successor.

    The successor's cycle 0 is the slot after this block's last issue.
    A pipeline whose final enqueue happened within ``enqueue_time`` of
    the block's end is still busy for the difference; a variable whose
    final store completes after the block's end is not yet readable.
    """
    if resolver is None:
        resolver = SigmaResolver(dag, machine)
    if not timing.order:
        return InitialConditions()
    next_origin = timing.issue_times[-1] + 1
    pipe_free: Dict[int, int] = {}
    last_issue_per_pipe: Dict[int, int] = {}
    for pos, ident in enumerate(timing.order):
        pid = resolver.sigma(ident)
        if pid is not None:
            last_issue_per_pipe[pid] = timing.issue_times[pos]
    for pid, issued in last_issue_per_pipe.items():
        free = issued + machine.pipeline(pid).enqueue_time - next_origin
        if free > 0:
            pipe_free[pid] = free
    variable_ready: Dict[str, int] = {}
    block = dag.block
    for pos, ident in enumerate(timing.order):
        t = block.by_ident(ident)
        if t.op.writes_memory:
            ready = timing.issue_times[pos] + resolver.latency(ident) - next_origin
            if ready > 0:
                variable_ready[t.variable] = max(
                    variable_ready.get(t.variable, 0), ready
                )
    return InitialConditions(pipe_free=pipe_free, variable_ready=variable_ready)


@dataclass(frozen=True)
class ScheduledSequence:
    """A straight-line program of scheduled blocks."""

    results: Tuple[SearchResult, ...]
    conditions: Tuple[InitialConditions, ...]  # carry-in of each block

    @property
    def total_nops(self) -> int:
        return sum(r.final_nops for r in self.results)

    @property
    def total_cycles(self) -> int:
        """Issue cycles of the concatenated stream."""
        return sum(r.best.issue_span_cycles for r in self.results)

    @property
    def all_completed(self) -> bool:
        return all(r.completed for r in self.results)

    def __len__(self) -> int:
        return len(self.results)


def schedule_sequence(
    blocks: Sequence[BasicBlock],
    machine: MachineDescription,
    options: SearchOptions = SearchOptions(),
    entry_conditions: InitialConditions = InitialConditions(),
) -> ScheduledSequence:
    """Schedule each block optimally under its predecessors' carry-out.

    Returns the per-block search results and the carry-in conditions each
    block was scheduled with.  Concatenating the blocks' NOP-padded
    streams yields a hazard-free whole-program stream (the simulator
    verifies this in the test suite).
    """
    results: List[SearchResult] = []
    conditions: List[InitialConditions] = []
    incoming = entry_conditions
    for block in blocks:
        dag = DependenceDAG(block)
        conditions.append(incoming)
        result = schedule_block(
            dag, machine, options, initial_conditions=incoming
        )
        results.append(result)
        incoming = carry_out(result.best, dag, machine)
    return ScheduledSequence(tuple(results), tuple(conditions))
