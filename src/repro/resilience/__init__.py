"""Fault tolerance for population runs.

Four pieces, composed by :mod:`repro.experiments.parallel` and the
``repro-experiments`` CLI:

* :mod:`repro.resilience.budget` — unified wall-clock / Ω-call / memo
  budgets and the ``optimal-search → curtailed-search → split-windows →
  list-seed`` degradation ladder.
* :mod:`repro.resilience.journal` — append-only, fsync'd checkpoint
  journal of completed block records; ``--resume`` replays it.
* :mod:`repro.resilience.supervisor` — heartbeat-based worker
  supervision policy: retry with capped backoff, then poison-quarantine.
* :mod:`repro.resilience.faults` — deterministic (seeded) fault
  injection used by the chaos suite and the ``--chaos`` CLI flag.
"""

from .budget import (
    LADDER,
    STEP_CURTAILED,
    STEP_LIST_SEED,
    STEP_OPTIMAL,
    STEP_SPLIT,
    BlockBudget,
    BudgetManager,
)
from .faults import FaultPlan
from .journal import Journal, JournalError, load_journal
from .supervisor import ChunkSupervisor, SupervisorConfig, validate_records

__all__ = [
    "LADDER",
    "STEP_CURTAILED",
    "STEP_LIST_SEED",
    "STEP_OPTIMAL",
    "STEP_SPLIT",
    "BlockBudget",
    "BudgetManager",
    "FaultPlan",
    "Journal",
    "JournalError",
    "load_journal",
    "ChunkSupervisor",
    "SupervisorConfig",
    "validate_records",
]
