"""Checkpoint journal for population runs.

A population run at paper scale schedules 16,000 blocks; losing the lot
to a crash or a Ctrl-C ten minutes in is unacceptable for a production
service.  The journal makes runs resumable:

* **Format** — JSON lines.  The first line is a header carrying the
  schema tag and the run's *configuration fingerprint* (block count,
  curtail point, master seed, engine, machine, verify flag, ...); every
  subsequent line is one completed :class:`BlockRecord` as a flat JSON
  object.  Records are append-only and may arrive in any order (the
  parallel engine journals whole chunks as they complete); the resume
  path merges them back in index order.
* **Durability** — the header is written atomically (temp file + fsync +
  rename, :mod:`repro.ioutil`); appends are flushed and fsync'd per
  batch.  A crash can therefore tear at most the final line, and
  :func:`load_journal` detects and discards a torn tail (resume
  truncates it before appending).  Torn or corrupt *interior* lines mean
  real disk corruption and raise :class:`JournalError`.
* **Safety** — resuming validates the configuration fingerprint; a
  journal written under different run parameters is rejected rather than
  silently merged into a differently-parameterized population.

The journal stores every ``BlockRecord`` field including the
non-compared ``elapsed_seconds``, so a resumed run's records are equal
(``BlockRecord`` equality excludes wall clock) to an uninterrupted
run's — the kill-and-resume invariant pinned by ``tests/test_chaos.py``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..ioutil import atomic_write_text, fsync_file

if TYPE_CHECKING:  # runtime import is deferred: runner imports this package
    from ..experiments.runner import BlockRecord

#: Version tag of the journal header.
JOURNAL_SCHEMA = "repro-journal/1"


def _record_type():
    from ..experiments.runner import BlockRecord

    return BlockRecord


class JournalError(ValueError):
    """A journal file is unreadable, corrupt, or from a different run."""


def record_to_dict(record: "BlockRecord") -> Dict[str, Any]:
    return dataclasses.asdict(record)


def record_from_dict(data: Mapping[str, Any]) -> "BlockRecord":
    record_type = _record_type()
    fields = {f.name for f in dataclasses.fields(record_type)}
    unknown = set(data) - fields
    if unknown:
        raise JournalError(f"unknown record field(s): {sorted(unknown)}")
    missing = fields - set(data) - {"degraded", "ladder", "elapsed_seconds"}
    if missing:
        raise JournalError(f"record missing field(s): {sorted(missing)}")
    return record_type(**data)


def _config_mismatch(
    found: Mapping[str, Any], expected: Mapping[str, Any]
) -> List[str]:
    keys = sorted(set(found) | set(expected))
    return [
        f"{key}: journal has {found.get(key)!r}, run wants {expected.get(key)!r}"
        for key in keys
        if found.get(key) != expected.get(key)
    ]


def load_journal(
    path: str, expect_config: Optional[Mapping[str, Any]] = None
) -> Tuple[Dict[str, Any], Dict[int, BlockRecord], int]:
    """Read a journal: ``(config, records by index, valid byte length)``.

    A torn final line (the only kind of tear an fsync'd append can leave)
    is discarded and excluded from the valid length; anything else that
    fails to decode raises :class:`JournalError`.  When ``expect_config``
    is given, the header fingerprint must match it exactly.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    lines = blob.split(b"\n")
    last_content = max(
        (i for i, line in enumerate(lines) if line.strip()), default=-1
    )
    offset = 0
    header: Optional[Dict[str, Any]] = None
    records: Dict[int, BlockRecord] = {}
    valid_bytes = 0
    for k, raw in enumerate(lines):
        line_end = offset + len(raw) + 1  # +1 for the newline
        text = raw.strip()
        offset = line_end
        if not text:
            continue
        is_tail = k == last_content
        try:
            payload = json.loads(text.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("journal line is not a JSON object")
            if header is None:
                if payload.get("schema") != JOURNAL_SCHEMA:
                    raise JournalError(
                        f"unsupported journal schema {payload.get('schema')!r} "
                        f"(want {JOURNAL_SCHEMA!r})"
                    )
                header = payload
            else:
                record = record_from_dict(payload)
                records[record.index] = record
        except JournalError:
            if is_tail and header is not None:
                break  # torn tail from a crash mid-append: discard
            raise
        except (ValueError, TypeError) as exc:
            if is_tail and header is not None:
                break  # torn tail from a crash mid-append: discard
            raise JournalError(
                f"{path}: corrupt journal line {k + 1}: {exc}"
            ) from None
        valid_bytes = min(line_end, len(blob))
    if header is None:
        raise JournalError(f"{path}: empty journal (no header line)")
    if expect_config is not None:
        mismatch = _config_mismatch(header.get("config", {}), expect_config)
        if mismatch:
            raise JournalError(
                f"{path}: journal was written by a different run — "
                + "; ".join(mismatch)
            )
    return header, records, valid_bytes


class Journal:
    """Append-only, fsync'd record journal (see module docstring).

    Use :meth:`create` for a fresh run and :meth:`resume` to continue an
    interrupted one; both return a journal open for appending.
    """

    def __init__(self, path: str, fh, config: Dict[str, Any]):
        self.path = path
        self._fh = fh
        self.config = config
        self.appended = 0

    # -- constructors --------------------------------------------------
    @classmethod
    def create(cls, path: str, config: Mapping[str, Any]) -> "Journal":
        """Start a fresh journal at ``path`` (header written atomically)."""
        header = {"schema": JOURNAL_SCHEMA, "config": dict(config)}
        atomic_write_text(path, json.dumps(header, sort_keys=True) + "\n")
        return cls(path, open(path, "a", encoding="utf-8"), dict(config))

    @classmethod
    def resume(
        cls, path: str, config: Mapping[str, Any]
    ) -> Tuple["Journal", Dict[int, BlockRecord]]:
        """Reopen ``path`` for appending; returns the finished records.

        A missing file degrades to :meth:`create` (so ``--resume`` both
        starts and continues runs); an existing file must carry a
        matching configuration fingerprint.  Any torn tail is truncated
        away before the first append.
        """
        if not os.path.exists(path):
            return cls.create(path, config), {}
        _, records, valid_bytes = load_journal(path, expect_config=config)
        fh = open(path, "r+", encoding="utf-8")
        fh.truncate(valid_bytes)
        fh.seek(0, os.SEEK_END)
        return cls(path, fh, dict(config)), records

    # -- appends -------------------------------------------------------
    def append(self, records: Iterable[BlockRecord]) -> None:
        """Journal completed records (one flushed, fsync'd write)."""
        lines = "".join(
            json.dumps(record_to_dict(r), sort_keys=True) + "\n" for r in records
        )
        if not lines:
            return
        self._fh.write(lines)
        fsync_file(self._fh)
        self.appended += lines.count("\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
