"""Deterministic fault injection for the population workers.

Chaos testing a supervisor is only useful when the chaos replays: a CI
failure must reproduce locally from the same seed.  A :class:`FaultPlan`
is therefore a pure function of ``(seed, chunk_id, attempt)`` — no global
RNG, no wall clock — that tells a worker to **crash** (hard ``os._exit``,
simulating an OOM kill or segfault), **hang** (sleep far past the
supervisor's heartbeat timeout, simulating a livelock), or **corrupt**
its results (return records that fail the parent's validation,
simulating memory corruption or a serialization bug) part-way through
its chunk.

``max_faults_per_chunk`` bounds how many *attempts* of one chunk can
fault, so a faulted run always converges: once a chunk has burned its
fault allowance, the next retry runs clean and produces exactly the
records a fault-free run would — which is what lets the chaos suite
assert byte-identical merged output.  (Set it above the supervisor's
retry cap to exercise the poison-quarantine path instead.)

The plan pickles through to worker processes; injection happens in
:func:`repro.experiments.parallel._chunk_worker` at the chunk's midpoint,
after some records are already built — so recovery must correctly
*discard* partial work, not just restart idle workers.

The same plan also drives the scheduling service's worker pool
(:mod:`repro.service.pool`, ``repro serve --chaos`` / ``repro bench
--service --chaos``): there ``chunk_id`` is the pool job's sequence
number, so a given request hits the same faults on every replay.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Optional

#: Fault kinds a plan can schedule.
FAULT_KINDS = ("crash", "hang", "corrupt")

#: Exit status of an injected worker crash (distinctive in process tables).
CRASH_EXIT_CODE = 70


@dataclass(frozen=True)
class FaultPlan:
    """Seeded schedule of worker faults (rates are per chunk *attempt*)."""

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 30.0
    max_faults_per_chunk: int = 2

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1] (got {rate})")
        if self.crash_rate + self.hang_rate + self.corrupt_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        if self.max_faults_per_chunk < 0:
            raise ValueError("max_faults_per_chunk must be non-negative")

    def decide(self, chunk_id: int, attempt: int) -> Optional[str]:
        """The fault (if any) attempt ``attempt`` of chunk ``chunk_id`` takes.

        Deterministic: integer-mixed seeding, no dependence on process
        state, so the parent can predict exactly what its workers will do.
        """
        if attempt >= self.max_faults_per_chunk:
            return None
        rng = random.Random(
            self.seed * 2_654_435_761 + chunk_id * 40_503 + attempt
        )
        draw = rng.random()
        if draw < self.crash_rate:
            return "crash"
        if draw < self.crash_rate + self.hang_rate:
            return "hang"
        if draw < self.crash_rate + self.hang_rate + self.corrupt_rate:
            return "corrupt"
        return None

    def inject(self, fault: Optional[str]) -> None:
        """Execute a crash or hang fault in the calling worker process.

        (``corrupt`` is applied to the result payload by the worker, not
        here — it must survive until the records are returned.)
        """
        if fault == "crash":
            os._exit(CRASH_EXIT_CODE)
        elif fault == "hang":
            time.sleep(self.hang_seconds)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from CLI syntax: ``"crash=0.1,hang=0.05,seed=7"``.

        Keys: ``crash``, ``hang``, ``corrupt`` (rates), ``seed``,
        ``hang-seconds``, ``max-faults``.
        """
        kwargs: dict = {}
        mapping = {
            "crash": ("crash_rate", float),
            "hang": ("hang_rate", float),
            "corrupt": ("corrupt_rate", float),
            "seed": ("seed", int),
            "hang-seconds": ("hang_seconds", float),
            "max-faults": ("max_faults_per_chunk", int),
        }
        for piece in spec.split(","):
            piece = piece.strip()
            if not piece:
                continue
            key, sep, value = piece.partition("=")
            key = key.strip()
            if not sep or key not in mapping:
                raise ValueError(
                    f"bad --chaos entry {piece!r} "
                    f"(keys: {', '.join(sorted(mapping))})"
                )
            name, cast = mapping[key]
            try:
                kwargs[name] = cast(value.strip())
            except ValueError:
                raise ValueError(
                    f"bad --chaos value for {key!r}: {value.strip()!r}"
                ) from None
        return cls(**kwargs)
