"""Worker supervision policy: heartbeats, retries, backoff, quarantine.

The mechanics of running worker processes live in
:mod:`repro.experiments.parallel`; this module owns the *policy* as a
plain, unit-testable state machine:

* Workers send a heartbeat message per scheduled block.  A worker whose
  heartbeat goes stale for longer than ``hang_timeout`` is presumed hung
  (livelock, pathological block) and is terminated; a worker process
  that dies without delivering its results (OOM kill, segfault,
  interpreter crash) is detected the same way the moment its process
  object reports dead.  Heartbeats measure *progress*, not liveness —
  a worker spinning uselessly is as dead as one that exited.
* A failed chunk is requeued with capped exponential backoff
  (``backoff_base * 2**(attempt-1)``, at most ``backoff_cap`` seconds),
  so a systemic failure (disk full, fork bomb elsewhere on the host)
  does not turn into a tight crash loop.
* After ``max_retries`` failed attempts a chunk is **poisoned**: the
  parent quarantines it and degrades its blocks to their deterministic
  list-schedule seeds (the bottom rung of the degradation ladder)
  instead of aborting the whole run.  One pathological block can cost
  its chunk optimality; it can no longer cost the run.

Returned chunks are validated before acceptance (:func:`validate_records`):
a worker that returns records for the wrong blocks, impossible NOP
counts, or inconsistent flags is treated exactly like a crashed one.

The same policy supervises the scheduling daemon's pre-fork worker pool
(:mod:`repro.service.pool`): there the unit of work is one request
block instead of a population chunk, heartbeat staleness is measured
per dispatched job, and :func:`validate_entry` plays the role of
:func:`validate_records` for one wire entry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .budget import LADDER


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning knobs of the population-run supervisor."""

    #: Seconds without a worker heartbeat before it is presumed hung.
    #: Must exceed the worst-case single-block scheduling time (bound it
    #: with a block wall-clock budget when in doubt).
    hang_timeout: float = 30.0
    #: Parent poll cadence for worker messages and liveness.
    poll_interval: float = 0.02
    #: Failed attempts before a chunk is poisoned (quarantined).
    max_retries: int = 3
    #: Exponential backoff: first retry after ``backoff_base`` seconds.
    backoff_base: float = 0.25
    #: Backoff ceiling.
    backoff_cap: float = 8.0

    def __post_init__(self) -> None:
        if self.hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based) of a chunk."""
        if attempt <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


def validate_records(records, expected_indexes: Sequence[int]) -> Optional[str]:
    """Why a worker's returned records are unacceptable (``None`` if fine).

    The checks are cheap structural invariants every honestly-produced
    record satisfies; violating any of them means the payload was
    corrupted in flight or the worker is broken, and the chunk must be
    retried.
    """
    if not isinstance(records, list):
        return f"payload is {type(records).__name__}, not a record list"
    got = [getattr(r, "index", None) for r in records]
    if got != list(expected_indexes):
        return f"record indexes {got} != assigned blocks {list(expected_indexes)}"
    for r in records:
        if r.size < 0 or r.statements < 0 or r.omega_calls < 0:
            return f"block {r.index}: negative size/statements/omega_calls"
        if min(r.initial_nops, r.seed_nops, r.final_nops) < 0:
            return f"block {r.index}: negative NOP count"
        if r.final_nops > r.seed_nops:
            return (
                f"block {r.index}: published {r.final_nops} NOPs, worse "
                f"than its own list seed ({r.seed_nops})"
            )
        if r.completed and r.degraded:
            return f"block {r.index}: completed and degraded are exclusive"
        if r.ladder not in LADDER:
            return f"block {r.index}: unknown ladder step {r.ladder!r}"
    return None


#: Wire-entry keys every honestly-produced service reply carries.
ENTRY_KEYS = (
    "name",
    "order",
    "etas",
    "issue_times",
    "total_nops",
    "seed_nops",
    "omega_calls",
    "completed",
    "degraded",
    "ladder",
    "cache",
    "shed",
)


def validate_entry(entry, expected_name: str, expected_idents) -> Optional[str]:
    """Why a pool worker's reply entry is unacceptable (``None`` if fine).

    The service-layer twin of :func:`validate_records`: cheap structural
    invariants of one ``repro-service/2`` entry.  A reply violating any
    of them was corrupted in flight (or the worker is broken) and the
    job must be retried on a fresh worker — never forwarded to a client.
    """
    if not isinstance(entry, dict):
        return f"payload is {type(entry).__name__}, not an entry object"
    missing = [k for k in ENTRY_KEYS if k not in entry]
    if missing:
        return f"entry is missing keys {missing}"
    if entry["name"] != expected_name:
        return f"entry names {entry['name']!r}, expected {expected_name!r}"
    order = entry["order"]
    if not isinstance(order, (list, tuple)) or sorted(order) != sorted(
        expected_idents
    ):
        return "order is not a permutation of the block's tuples"
    for seq_key in ("etas", "issue_times"):
        seq = entry[seq_key]
        if not isinstance(seq, (list, tuple)) or len(seq) != len(order):
            return f"{seq_key} does not match the order length"
    if min(entry["total_nops"], entry["seed_nops"], entry["omega_calls"]) < 0:
        return "negative NOP or omega count"
    if entry["total_nops"] > entry["seed_nops"]:
        return (
            f"published {entry['total_nops']} NOPs, worse than the "
            f"list seed ({entry['seed_nops']})"
        )
    if entry["completed"] and entry["degraded"]:
        return "completed and degraded are exclusive"
    if entry["ladder"] not in LADDER:
        return f"unknown ladder step {entry['ladder']!r}"
    if entry["cache"] not in ("hit", "miss", "bypass"):
        return f"unknown cache status {entry['cache']!r}"
    return None


class ChunkSupervisor:
    """Bookkeeping for one supervised run over ``n_chunks`` chunks.

    Pure state machine over an injected clock: no processes, no sleeps.
    The driver asks :meth:`next_ready` what to launch, reports
    :meth:`note_success` / :meth:`note_failure`, and stops when
    :meth:`finished`.
    """

    def __init__(self, n_chunks: int, config: SupervisorConfig):
        self.config = config
        self.pending = deque(range(n_chunks))
        self.attempts: Dict[int, int] = {cid: 0 for cid in range(n_chunks)}
        self.eligible_at: Dict[int, float] = {cid: 0.0 for cid in range(n_chunks)}
        self.done: set = set()
        self.poisoned: set = set()
        self.failures: List[str] = []  # "(chunk, attempt, kind)" audit trail

    # -- scheduling ----------------------------------------------------
    def next_ready(self, now: float) -> Optional[int]:
        """Pop a pending chunk whose backoff has elapsed, if any."""
        for _ in range(len(self.pending)):
            cid = self.pending.popleft()
            if self.eligible_at[cid] <= now:
                return cid
            self.pending.append(cid)
        return None

    def sleep_hint(self, now: float) -> float:
        """Longest useful sleep when nothing is ready (backoff waits)."""
        if not self.pending:
            return self.config.poll_interval
        earliest = min(self.eligible_at[cid] for cid in self.pending)
        return max(0.0, min(earliest - now, self.config.backoff_cap))

    # -- outcomes ------------------------------------------------------
    def note_success(self, cid: int) -> None:
        self.done.add(cid)

    def note_failure(self, cid: int, kind: str, now: float) -> str:
        """Record a failed attempt; returns ``"retry"`` or ``"poison"``."""
        self.attempts[cid] += 1
        self.failures.append(f"chunk {cid} attempt {self.attempts[cid]}: {kind}")
        if self.attempts[cid] > self.config.max_retries:
            self.poisoned.add(cid)
            return "poison"
        self.eligible_at[cid] = now + self.config.backoff_delay(self.attempts[cid])
        self.pending.append(cid)
        return "retry"

    def drain_pending(self) -> List[int]:
        """Take every not-yet-running chunk (run-budget exhaustion path)."""
        drained = list(self.pending)
        self.pending.clear()
        return drained

    def finished(self) -> bool:
        return all(
            cid in self.done or cid in self.poisoned for cid in self.attempts
        )
