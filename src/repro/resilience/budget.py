"""Resource budgets and the degradation ladder.

The paper's curtail point λ (section 2.3, step [6]) is already a
graceful-degradation primitive: stop searching, keep the best schedule
found so far, and *say so* on the result.  Production runs need the same
anytime contract for every resource, not just Ω calls.  This module
unifies the three block-level budgets —

* **wall clock** (``SearchOptions.time_limit``),
* **node expansions** (the curtail point λ), and
* **dominance-memo memory** (``SearchOptions.max_memo_entries``)

— plus two *run*-level budgets (total wall clock and total Ω calls across
a whole population), behind one :class:`BudgetManager`, and defines the
**degradation ladder** a block walks down as budgets tighten:

``optimal-search``
    The branch-and-bound exhausted its pruned space (or the incumbent met
    an admissible lower bound); the published schedule is provably optimal.
``curtailed-search``
    The Ω budget (λ) truncated the search; the published schedule is the
    best incumbent — the paper's condition [2].  Deterministic: the same
    block and λ always stop at the same incumbent.
``split-windows``
    The wall-clock deadline truncated the search; the section-5.3 windowed
    scheduler re-ran the block under a small *deterministic* per-window Ω
    budget and beat the list-schedule seed.  The published schedule is
    locally optimal per window.
``list-seed``
    Nothing beat the list-schedule seed within budget (or the run-level
    budget was already exhausted, or a poisoned worker chunk was
    quarantined); the published schedule is the deterministic list
    schedule itself.

Every rung is recorded on ``BlockRecord.ladder`` and counted in the
``resilience.ladder.*`` telemetry namespace, so a degraded run is never
silently indistinguishable from a complete one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional

from ..sched.search import SearchOptions

#: Ladder rungs, best to worst.
STEP_OPTIMAL = "optimal-search"
STEP_CURTAILED = "curtailed-search"
STEP_SPLIT = "split-windows"
STEP_LIST_SEED = "list-seed"
LADDER = (STEP_OPTIMAL, STEP_CURTAILED, STEP_SPLIT, STEP_LIST_SEED)

#: Per-window Ω budget of the split-windows rung.  Small enough that the
#: fallback costs a fraction of the primary search, large enough that a
#: 20-instruction window almost always completes.
DEFAULT_SPLIT_CURTAIL = 2_000

#: Window size of the split-windows rung (the paper's suggestion).
DEFAULT_SPLIT_WINDOW = 20


@dataclass(frozen=True)
class BlockBudget:
    """Per-block resource caps (``None`` = uncapped).

    ``wall_clock`` bounds the seconds one block may spend in the
    branch-and-bound; ``omega_cap`` clamps the curtail point λ;
    ``memo_cap`` clamps the dominance-memo entry count (memory).
    """

    wall_clock: Optional[float] = None
    omega_cap: Optional[int] = None
    memo_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if self.wall_clock is not None and self.wall_clock <= 0:
            raise ValueError("block wall_clock budget must be positive")
        if self.omega_cap is not None and self.omega_cap < 1:
            raise ValueError("block omega_cap must be at least 1")
        if self.memo_cap is not None and self.memo_cap < 0:
            raise ValueError("block memo_cap must be non-negative")


class BudgetManager:
    """Budgets for one population run, and the ladder configuration.

    The manager is picklable and crosses process boundaries into the
    population workers: block-level clamps (:meth:`options_for_block`)
    and the split-rung configuration are stateless, so workers apply them
    locally.  Run-level accounting (:meth:`charge`, :meth:`run_exhausted`)
    is kept by whichever process merges records — the parent, for
    parallel runs — so the run-level Ω cap is exact for serial runs and
    chunk-granular for parallel ones.

    ``time.monotonic`` is system-wide on the platforms we target, so the
    run deadline set in the parent holds in forked workers too.
    """

    def __init__(
        self,
        block: BlockBudget = BlockBudget(),
        run_wall_clock: Optional[float] = None,
        run_omega_cap: Optional[int] = None,
        split_fallback: bool = True,
        split_window: int = DEFAULT_SPLIT_WINDOW,
        split_curtail: int = DEFAULT_SPLIT_CURTAIL,
    ) -> None:
        if run_wall_clock is not None and run_wall_clock <= 0:
            raise ValueError("run wall-clock budget must be positive")
        if run_omega_cap is not None and run_omega_cap < 1:
            raise ValueError("run omega cap must be at least 1")
        if split_window < 1:
            raise ValueError("split window must be at least 1")
        if split_curtail < 1:
            raise ValueError("split curtail must be at least 1")
        self.block = block
        self.run_wall_clock = run_wall_clock
        self.run_omega_cap = run_omega_cap
        self.split_fallback = split_fallback
        self.split_window = split_window
        self.split_curtail = split_curtail
        self._deadline: Optional[float] = None
        self._omega_spent = 0

    # -- run-level accounting ------------------------------------------
    def start(self) -> "BudgetManager":
        """Arm the run-level wall clock (idempotent)."""
        if self.run_wall_clock is not None and self._deadline is None:
            self._deadline = time.monotonic() + self.run_wall_clock
        return self

    def charge(self, omega_calls: int) -> None:
        """Account ``omega_calls`` against the run-level Ω budget."""
        self._omega_spent += omega_calls

    @property
    def omega_spent(self) -> int:
        return self._omega_spent

    def remaining_run_seconds(self) -> Optional[float]:
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    def run_exhausted(self) -> Optional[str]:
        """Why the *run* budget is spent (``None`` while it is not).

        Once exhausted, remaining blocks drop straight to the
        ``list-seed`` rung instead of searching at all — the anytime
        contract: a run over budget still publishes a legal schedule for
        every block.
        """
        if self.run_omega_cap is not None and self._omega_spent >= self.run_omega_cap:
            return "omega"
        remaining = self.remaining_run_seconds()
        if remaining is not None and remaining <= 0:
            return "wall-clock"
        return None

    # -- block-level clamps --------------------------------------------
    def options_for_block(self, options: SearchOptions) -> SearchOptions:
        """Clamp ``options`` to this manager's block budgets.

        The curtail point, wall-clock limit and memo cap each become the
        minimum of the caller's value and the budget's; the remaining
        run-level wall clock also bounds the block deadline, so the last
        block before a run deadline cannot overshoot it by a whole block
        budget.
        """
        curtail = options.curtail
        if self.block.omega_cap is not None:
            curtail = min(curtail, self.block.omega_cap)
        limits = [
            t
            for t in (
                options.time_limit,
                self.block.wall_clock,
                self.remaining_run_seconds(),
            )
            if t is not None
        ]
        # A run deadline already blown is handled by run_exhausted();
        # clamp to a tiny positive limit rather than an invalid one.
        time_limit = max(min(limits), 1e-9) if limits else None
        max_memo = options.max_memo_entries
        if self.block.memo_cap is not None:
            max_memo = min(max_memo, self.block.memo_cap)
        if (
            curtail == options.curtail
            and time_limit == options.time_limit
            and max_memo == options.max_memo_entries
        ):
            return options
        return replace(
            options,
            curtail=curtail,
            time_limit=time_limit,
            max_memo_entries=max_memo,
        )

    # -- pickling (run-level state is process-local) -------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # Ω accounting never crosses the pickle boundary: the merging
        # process owns it.  The armed deadline *does* cross (monotonic is
        # system-wide), so forked workers respect the run deadline.
        state["_omega_spent"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BudgetManager(block={self.block}, "
            f"run_wall_clock={self.run_wall_clock}, "
            f"run_omega_cap={self.run_omega_cap}, "
            f"split_fallback={self.split_fallback})"
        )
