"""End-to-end compiler driver.

Wires the whole prototype back end of Figure 2 together::

    source --> tuples --> optimizer --> (spill pre-pass) --> list schedule
           --> pipeline scheduler --> register allocation --> assembly

and optionally closes the loop by executing the generated NOP-padded
stream on the cycle-accurate simulator and comparing the final memory
against the source-level interpreter.

Two entry points:

* :func:`compile_source` — one basic block (the paper's core case);
* :func:`compile_program` — a multi-block program partitioned by
  ``barrier;`` statements, each block scheduled under its predecessors'
  carry-out pipeline state (footnote 1 / ``repro.sched.interblock``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from .codegen.assembly import (
    AssemblyProgram,
    DelayDiscipline,
    generate_assembly,
    padded_stream,
)
from .frontend.ast import Program, run_program
from .frontend.lowering import lower_program
from .frontend.parser import parse_program
from .ir.block import BasicBlock
from .ir.dag import DependenceDAG
from .machine.machine import MachineDescription
from .opt.manager import optimize_block
from .regalloc.allocator import RegisterAllocation, allocate_registers
from .regalloc.spill import insert_spill_code
from .sched.heuristics import greedy_schedule, gross_schedule
from .sched.list_scheduler import list_schedule, program_order
from .sched.nop_insertion import ScheduleTiming, compute_timing
from .sched.search import SearchOptions, SearchResult, schedule_block
from .simulator.core import PipelineSimulator
from .telemetry import Telemetry

#: Scheduler selection for :func:`compile_source`.  "multi" is the
#: pipeline-selection extension (footnote 3) — the only choice that
#: accepts non-deterministic machines like the Tables 2+3 example.
#: "ilp" is the paper search's ILP twin (``repro.ilp``): same optimum,
#: independently derived, with a certified dual bound when curtailed.
SCHEDULERS = ("optimal", "ilp", "multi", "gross", "greedy", "list", "none")


class VerificationError(RuntimeError):
    """The compiled code's simulated behaviour diverged from the source
    semantics — a compiler bug by definition."""


@dataclass(frozen=True)
class CompilationResult:
    """Everything the driver produced for one source block."""

    program: Program
    raw_block: BasicBlock
    block: BasicBlock  # after optimization / spill pre-pass
    dag: DependenceDAG
    timing: ScheduleTiming
    allocation: RegisterAllocation
    assembly: AssemblyProgram
    search: Optional[SearchResult]  # None for heuristic schedulers
    machine: MachineDescription
    #: Per-tuple pipeline choice (scheduler="multi" only).
    pipeline_assignment: Optional[dict] = None

    @property
    def total_nops(self) -> int:
        return self.timing.total_nops

    @property
    def issue_span_cycles(self) -> int:
        return self.timing.issue_span_cycles


def compile_source(
    source: str,
    machine: MachineDescription,
    scheduler: str = "optimal",
    options: SearchOptions = SearchOptions(),
    optimize: bool = True,
    num_registers: Optional[int] = None,
    discipline: DelayDiscipline = DelayDiscipline.NOP_PADDED,
    verify_memory: Optional[Mapping[str, int]] = None,
    name: str = "block",
    telemetry: Optional[Telemetry] = None,
) -> CompilationResult:
    """Compile one straight-line source block end to end.

    Parameters
    ----------
    scheduler:
        ``"optimal"`` (the paper's search), ``"ilp"`` (the declarative
        ILP witness — same optimum, independently derived),
        ``"gross"``/``"greedy"`` (heuristic baselines), ``"list"`` (seed
        schedule only), or ``"none"`` (program order, NOPs inserted but
        nothing moved).
    num_registers:
        When given, the spill pre-pass bounds program-order register
        pressure before scheduling (section 3.1).
    verify_memory:
        When given, the generated code is executed on the simulator from
        this initial memory and checked against source semantics;
        :class:`VerificationError` on mismatch.
    """
    if scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {scheduler!r}; pick from {SCHEDULERS}")

    program = parse_program(source)
    raw_block = lower_program(program, name)
    block = optimize_block(raw_block) if optimize and len(raw_block) else raw_block
    if num_registers is not None:
        # Section 3.1: create spill code up front so program order fits
        # the register file, then constrain the scheduler to stay within
        # it — post-scheduling allocation then never needs new spills.
        block = insert_spill_code(block, num_registers).block
        import dataclasses

        options = dataclasses.replace(options, max_live=num_registers)
    dag = DependenceDAG(block)

    search: Optional[SearchResult] = None
    assignment = None
    if scheduler in ("optimal", "ilp"):
        search = schedule_block(
            dag, machine, options, telemetry=telemetry,
            backend="ilp" if scheduler == "ilp" else "search",
        )
        timing = search.best
    elif scheduler == "multi":
        from .sched.multi import schedule_block_multi

        multi = schedule_block_multi(dag, machine, options, telemetry=telemetry)
        assignment = dict(multi.assignment)
        timing = compute_timing(
            dag, multi.order, machine, assignment=assignment
        )
    elif scheduler == "gross":
        timing = gross_schedule(dag, machine)
    elif scheduler == "greedy":
        timing = greedy_schedule(dag, machine)
    elif scheduler == "list":
        timing = compute_timing(dag, list_schedule(dag), machine)
    else:
        timing = compute_timing(dag, program_order(dag), machine)
    if scheduler not in ("optimal", "ilp", "multi") and num_registers is not None:
        from .regalloc.liveness import max_live

        if max_live(block, timing.order) > num_registers:
            # Heuristic orders are pressure-oblivious; program order is
            # the schedule the spill pre-pass guarantees to fit.
            timing = compute_timing(dag, program_order(dag), machine)

    allocation = allocate_registers(block, timing.order, num_registers)
    assembly = generate_assembly(block, timing, allocation, discipline)

    result = CompilationResult(
        program=program,
        raw_block=raw_block,
        block=block,
        dag=dag,
        timing=timing,
        allocation=allocation,
        assembly=assembly,
        search=search,
        machine=machine,
        pipeline_assignment=assignment,
    )
    if verify_memory is not None:
        verify_compilation(result, verify_memory)
    return result


def verify_compilation(
    result: CompilationResult, memory: Mapping[str, int]
) -> None:
    """Execute the compiled schedule on the simulator and compare every
    source-visible variable against the source interpreter."""
    expected = run_program(result.program, dict(memory))
    sim = PipelineSimulator(
        result.block,
        result.machine,
        dag=result.dag,
        assignment=result.pipeline_assignment,
    )
    trace = sim.run_padded(padded_stream(result.timing), memory)
    for var in result.program.variables_written():
        got = trace.memory.get(var)
        want = expected[var]
        if got != want:
            raise VerificationError(
                f"variable {var!r}: simulator produced {got}, source "
                f"semantics require {want}"
            )
    # Timing cross-check: the padded stream's span must equal the
    # schedule length plus its NOPs.
    span = len(result.timing.order) + result.timing.total_nops
    if trace.total_cycles != span:
        raise VerificationError(
            f"padded stream took {trace.total_cycles} cycles, schedule "
            f"says {span}"
        )
    # Text-level cross-check: the emitted assembly, reparsed and executed
    # on the independent register machine, must agree too.  Only possible
    # when the text carries the delays AND the machine is deterministic —
    # a per-tuple pipeline assignment cannot be expressed at the mnemonic
    # level the register machine sees.
    if (
        result.assembly.discipline is not DelayDiscipline.IMPLICIT_INTERLOCK
        and result.pipeline_assignment is None
    ):
        from .simulator.register_machine import RegisterMachine

        register_trace = RegisterMachine(result.machine).run_text(
            str(result.assembly), memory
        )
        for var in result.program.variables_written():
            if register_trace.memory.get(var) != expected[var]:
                raise VerificationError(
                    f"assembly text: register machine produced "
                    f"{register_trace.memory.get(var)} for {var!r}, "
                    f"source semantics require {expected[var]}"
                )
        if register_trace.total_cycles != span:
            raise VerificationError(
                f"assembly text took {register_trace.total_cycles} cycles "
                f"on the register machine, schedule says {span}"
            )


def compile_block(
    block: BasicBlock,
    machine: MachineDescription,
    scheduler: str = "optimal",
    options: SearchOptions = SearchOptions(),
    optimize: bool = False,
    num_registers: Optional[int] = None,
    discipline: DelayDiscipline = DelayDiscipline.NOP_PADDED,
    telemetry: Optional[Telemetry] = None,
) -> CompilationResult:
    """Compile hand-written tuple code (no front end).

    The entry point for code already in the linear notation of Figure 3
    (``repro.ir.parse_block``); used by ``repro-compile --tuples``.
    ``optimize`` defaults to off — hand-written tuples usually *are* the
    intended code.  Verification against source semantics is not
    available (there is no source program); use the simulator directly.
    """
    if scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {scheduler!r}; pick from {SCHEDULERS}")
    raw_block = block
    if optimize and len(block):
        block = optimize_block(block)
    block_options = options
    if num_registers is not None:
        block = insert_spill_code(block, num_registers).block
        import dataclasses

        block_options = dataclasses.replace(options, max_live=num_registers)
    dag = DependenceDAG(block)

    search: Optional[SearchResult] = None
    assignment = None
    if scheduler in ("optimal", "ilp"):
        search = schedule_block(
            dag, machine, block_options, telemetry=telemetry,
            backend="ilp" if scheduler == "ilp" else "search",
        )
        timing = search.best
    elif scheduler == "multi":
        from .sched.multi import schedule_block_multi

        multi = schedule_block_multi(
            dag, machine, block_options, telemetry=telemetry
        )
        assignment = dict(multi.assignment)
        timing = compute_timing(dag, multi.order, machine, assignment=assignment)
    elif scheduler == "gross":
        timing = gross_schedule(dag, machine)
    elif scheduler == "greedy":
        timing = greedy_schedule(dag, machine)
    elif scheduler == "list":
        timing = compute_timing(dag, list_schedule(dag), machine)
    else:
        timing = compute_timing(dag, program_order(dag), machine)
    if scheduler not in ("optimal", "ilp", "multi") and num_registers is not None:
        from .regalloc.liveness import max_live

        if max_live(block, timing.order) > num_registers:
            timing = compute_timing(dag, program_order(dag), machine)

    allocation = allocate_registers(block, timing.order, num_registers)
    assembly = generate_assembly(block, timing, allocation, discipline)
    return CompilationResult(
        program=Program([]),
        raw_block=raw_block,
        block=block,
        dag=dag,
        timing=timing,
        allocation=allocation,
        assembly=assembly,
        search=search,
        machine=machine,
        pipeline_assignment=assignment,
    )


# ----------------------------------------------------------------------
# Multi-block programs (barrier;)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProgramCompilation:
    """Compilation of a barrier-partitioned program."""

    program: Program
    blocks: tuple  # of CompilationResult, in order
    machine: MachineDescription

    @property
    def total_nops(self) -> int:
        return sum(b.total_nops for b in self.blocks)

    @property
    def total_cycles(self) -> int:
        return sum(b.issue_span_cycles for b in self.blocks)

    @property
    def all_optimal(self) -> bool:
        return all(
            b.search is not None and b.search.completed for b in self.blocks
        )

    @property
    def assembly_text(self) -> str:
        return "\n\n".join(str(b.assembly) for b in self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


def compile_program(
    source: str,
    machine: MachineDescription,
    scheduler: str = "optimal",
    options: SearchOptions = SearchOptions(),
    optimize: bool = True,
    num_registers: Optional[int] = None,
    discipline: DelayDiscipline = DelayDiscipline.NOP_PADDED,
    verify_memory: Optional[Mapping[str, int]] = None,
    name: str = "program",
    telemetry: Optional[Telemetry] = None,
) -> ProgramCompilation:
    """Compile a multi-block program (blocks separated by ``barrier;``).

    Each block is compiled like :func:`compile_source` but scheduled under
    the carry-out pipeline conditions of its predecessor (footnote 1), so
    the concatenated instruction stream is hazard-free.  With
    ``verify_memory``, the whole sequence is simulated block by block —
    threading both memory and pipeline state — and compared against
    source semantics.
    """
    from .sched.interblock import carry_out
    from .sched.nop_insertion import InitialConditions

    if scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {scheduler!r}; pick from {SCHEDULERS}")
    if scheduler == "multi":
        raise ValueError(
            "the multi-pipeline scheduler does not support carry-in "
            "conditions yet; compile multi-block programs on a "
            "deterministic machine, or single blocks with scheduler='multi'"
        )
    program = parse_program(source)
    segments = program.split_blocks()
    if not segments:
        segments = (Program([]),)

    results = []
    conditions = InitialConditions()
    for index, segment in enumerate(segments):
        raw_block = lower_program(segment, f"{name}.{index}")
        block = (
            optimize_block(raw_block) if optimize and len(raw_block) else raw_block
        )
        block_options = options
        if num_registers is not None:
            block = insert_spill_code(block, num_registers).block
            import dataclasses

            block_options = dataclasses.replace(
                options, max_live=num_registers
            )
        dag = DependenceDAG(block)

        search: Optional[SearchResult] = None
        if scheduler in ("optimal", "ilp"):
            search = schedule_block(
                dag,
                machine,
                block_options,
                initial_conditions=conditions,
                telemetry=telemetry,
                backend="ilp" if scheduler == "ilp" else "search",
            )
            timing = search.best
        elif scheduler == "gross":
            timing = gross_schedule(dag, machine, initial=conditions)
        elif scheduler == "greedy":
            timing = greedy_schedule(dag, machine, initial=conditions)
        elif scheduler == "list":
            timing = compute_timing(
                dag, list_schedule(dag), machine, initial=conditions
            )
        else:
            timing = compute_timing(
                dag, program_order(dag), machine, initial=conditions
            )
        if scheduler not in ("optimal", "ilp") and num_registers is not None:
            from .regalloc.liveness import max_live

            if max_live(block, timing.order) > num_registers:
                timing = compute_timing(
                    dag, program_order(dag), machine, initial=conditions
                )

        allocation = allocate_registers(block, timing.order, num_registers)
        assembly = generate_assembly(block, timing, allocation, discipline)
        results.append(
            CompilationResult(
                program=segment,
                raw_block=raw_block,
                block=block,
                dag=dag,
                timing=timing,
                allocation=allocation,
                assembly=assembly,
                search=search,
                machine=machine,
            )
        )
        conditions = carry_out(timing, dag, machine)

    compiled = ProgramCompilation(program, tuple(results), machine)
    if verify_memory is not None:
        verify_program(compiled, verify_memory)
    return compiled


def verify_program(
    compiled: ProgramCompilation, memory: Mapping[str, int]
) -> None:
    """Simulate the whole block sequence (threading memory *and* pipeline
    state) and compare every written variable against source semantics."""
    from .sched.interblock import carry_out

    expected = run_program(compiled.program, dict(memory))
    current = dict(memory)
    conditions = None
    for index, result in enumerate(compiled.blocks):
        from .sched.nop_insertion import InitialConditions

        sim = PipelineSimulator(
            result.block,
            compiled.machine,
            dag=result.dag,
            initial=conditions if conditions is not None else InitialConditions(),
        )
        trace = sim.run_padded(padded_stream(result.timing), current)
        span = len(result.timing.order) + result.timing.total_nops
        if trace.total_cycles != span:
            raise VerificationError(
                f"block {index}: padded stream took {trace.total_cycles} "
                f"cycles, schedule says {span}"
            )
        # Text-level cross-check under the same carry-in conditions.
        if result.assembly.discipline is not DelayDiscipline.IMPLICIT_INTERLOCK:
            from .simulator.register_machine import RegisterMachine

            register_trace = RegisterMachine(compiled.machine).run_text(
                str(result.assembly), current, initial=conditions
            )
            if register_trace.total_cycles != span:
                raise VerificationError(
                    f"block {index}: assembly text took "
                    f"{register_trace.total_cycles} cycles on the register "
                    f"machine, schedule says {span}"
                )
        current = dict(trace.memory)
        conditions = carry_out(result.timing, result.dag, compiled.machine)
    for var in compiled.program.variables_written():
        got = current.get(var)
        want = expected[var]
        if got != want:
            raise VerificationError(
                f"variable {var!r}: simulator produced {got}, source "
                f"semantics require {want}"
            )


# ----------------------------------------------------------------------
# Loops (for i in 0..N { ... })
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LoopCompilation:
    """Everything the driver produced for one source loop."""

    program: Program
    loop: "LoopBlock"  # lowered body + derived carried dependences
    result: "ModuloScheduleResult"
    machine: MachineDescription
    #: Independent steady-state certificate (always checked; a
    #: compilation with a rejected certificate never leaves the driver).
    certificate: "LoopCertificateReport"

    @property
    def ii(self) -> int:
        return self.result.ii

    @property
    def list_ii(self) -> int:
        return self.result.list_ii

    @property
    def kernel_text(self) -> str:
        return self.result.kernel_text


def compile_loop(
    source: str,
    machine: MachineDescription,
    options: SearchOptions = SearchOptions(),
    verify_memory: Optional[Mapping[str, int]] = None,
    trip_count: Optional[int] = None,
    name: str = "loop",
    telemetry: Optional[Telemetry] = None,
) -> LoopCompilation:
    """Compile one source loop into a certified modulo schedule.

    ``source`` must be a program whose single statement is a ``for``
    loop.  The body is lowered to a :class:`~repro.ir.loop.LoopBlock`
    (tuples plus derived cross-iteration dependences) and scheduled by
    :func:`repro.sched.pipelining.schedule_loop`; the resulting kernel
    is then re-checked by the independent steady-state certificate —
    a rejected certificate raises :class:`VerificationError` rather
    than returning a bad schedule.

    With ``verify_memory``, the flat issue stream of several overlapped
    iterations is additionally *executed* (against an unrolled copy of
    the body) and every written variable compared against source
    semantics; ``trip_count`` overrides the loop bounds for that check
    (useful when a bound is symbolic).
    """
    from .frontend.ast import ForLoop
    from .frontend.lowering import lower_loop
    from .ir.interp import run_block
    from .ir.loop import run_loop
    from .sched.pipelining import schedule_loop
    from .verify.certificate import check_steady_state

    program = parse_program(source)
    loops = [s for s in program.statements if isinstance(s, ForLoop)]
    if len(loops) != 1 or len(program.statements) != 1:
        raise ValueError(
            "compile_loop expects a program whose single statement is a "
            f"for-loop; got {len(program.statements)} statement(s) of "
            f"which {len(loops)} loop(s).  Straight-line programs go "
            "through compile_source/compile_program."
        )
    loop = lower_loop(loops[0], name=name)

    result = schedule_loop(
        loop, machine, options=options, telemetry=telemetry
    )
    certificate = check_steady_state(
        loop.body, machine, result.offsets, result.ii,
        assignment=result.assignment,
    )
    if not certificate.ok:
        raise VerificationError(
            "the modulo schedule failed independent certification:\n"
            + certificate.summary()
        )

    compiled = LoopCompilation(
        program=program,
        loop=loop,
        result=result,
        machine=machine,
        certificate=certificate,
    )
    if verify_memory is not None:
        trips = (
            trip_count
            if trip_count is not None
            else loop.trip_count(dict(verify_memory))
        )
        expected = run_program(program, dict(verify_memory))
        # Execute the *scheduled* overlapped stream: the flat issue
        # order of all iterations against an unrolled body copy.
        memory = dict(verify_memory)
        if loop.loop_var is not None:
            memory[loop.loop_var] = _resolve_bound(loop.start, memory)
        if trips > 0:
            stride = max(loop.body.idents)
            stream_order = [
                z + i * stride for _, i, z in result.stream(trips)
            ]
            final = dict(
                run_block(
                    loop.unrolled(trips), memory=memory, order=stream_order
                ).memory
            )
        else:
            final = dict(memory)
        if loop.loop_var is not None:
            # Scoped binding: the source loop restores/removes it.
            final.pop(loop.loop_var, None)
        sequential = run_loop(
            loop, memory=dict(verify_memory), trip_count=trips
        )
        for var in program.variables_written():
            want = expected.get(var)
            got = final.get(var)
            if got != want:
                raise VerificationError(
                    f"variable {var!r}: the scheduled stream produced "
                    f"{got}, source semantics require {want}"
                )
            if sequential.get(var) != want:
                raise VerificationError(
                    f"variable {var!r}: lowered loop produced "
                    f"{sequential.get(var)}, source semantics require "
                    f"{want}"
                )
    return compiled


def _resolve_bound(bound, env):
    """Resolve a loop bound (int literal or symbolic name) against env."""
    if isinstance(bound, int):
        return bound
    return env[bound]
