"""Code generation: scheduled tuples to target assembly (section 3.4).

"It is assumed that the tuple operations are defined so that each tuple
corresponds directly to one target machine instruction, hence this
transformation is easily accomplished."  The synthetic target ISA is a
three-address register machine:

=========  =====================  =================
tuple      assembly               meaning
=========  =====================  =================
Const      ``LI   Rd, imm``       load immediate
Load       ``LD   Rd, var``       load from memory
Store      ``ST   var, Rs``       store to memory
Copy       ``MOV  Rd, Rs``        register move
Neg        ``NEG  Rd, Rs``        negate
Add/...    ``ADD  Rd, Ra, Rb``    arithmetic
(delay)    ``NOP``                null operation
=========  =====================  =================

All three delay disciplines of section 2.2 are emitted from the same
schedule:

* :data:`DelayDiscipline.NOP_PADDED` — ``eta(i)`` NOP lines before each
  instruction (MIPS-style; the paper's canonical presentation);
* :data:`DelayDiscipline.EXPLICIT_INTERLOCK` — each instruction prefixed
  with a Tera-style ``wait=k`` tag holding its eta;
* :data:`DelayDiscipline.IMPLICIT_INTERLOCK` — bare instructions; the
  hardware stalls (etas appear only as comments).

The emitted NOP-padded and explicit streams replay exactly on the
cycle-accurate simulator, which is how tests close the loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.ops import Opcode
from ..ir.tuples import ConstOperand, RefOperand
from ..regalloc.allocator import RegisterAllocation
from ..sched.nop_insertion import ScheduleTiming


class DelayDiscipline(enum.Enum):
    """Section 2.2's three architectural delay mechanisms."""

    NOP_PADDED = "nop-padded"
    EXPLICIT_INTERLOCK = "explicit-interlock"
    IMPLICIT_INTERLOCK = "implicit-interlock"


_MNEMONICS = {
    Opcode.ADD: "ADD",
    Opcode.SUB: "SUB",
    Opcode.MUL: "MUL",
    Opcode.DIV: "DIV",
}


@dataclass(frozen=True)
class AssemblyProgram:
    """Generated assembly for one scheduled block."""

    name: str
    discipline: DelayDiscipline
    lines: Tuple[str, ...]
    num_registers_used: int
    nop_count: int

    def __str__(self) -> str:
        return "\n".join(self.lines)

    @property
    def instruction_count(self) -> int:
        """Real (non-NOP, non-comment) instructions."""
        return sum(
            1
            for line in self.lines
            if line.strip() and not line.strip().startswith(";")
            and line.strip() != "NOP"
        )


def _render_instruction(
    t, allocation: RegisterAllocation, reg_names: Dict[int, str]
) -> str:
    op = t.op
    if op is Opcode.CONST:
        assert isinstance(t.alpha, ConstOperand)
        return f"LI   {reg_names[t.ident]}, {t.alpha.value}"
    if op is Opcode.LOAD:
        return f"LD   {reg_names[t.ident]}, {t.variable}"
    if op is Opcode.STORE:
        assert isinstance(t.beta, RefOperand)
        return f"ST   {t.variable}, {reg_names[t.beta.ref]}"
    if op is Opcode.COPY:
        assert isinstance(t.alpha, RefOperand)
        return f"MOV  {reg_names[t.ident]}, {reg_names[t.alpha.ref]}"
    if op is Opcode.NEG:
        assert isinstance(t.alpha, RefOperand)
        return f"NEG  {reg_names[t.ident]}, {reg_names[t.alpha.ref]}"
    assert isinstance(t.alpha, RefOperand) and isinstance(t.beta, RefOperand)
    return (
        f"{_MNEMONICS[op]}  {reg_names[t.ident]}, "
        f"{reg_names[t.alpha.ref]}, {reg_names[t.beta.ref]}"
    )


def generate_assembly(
    block: BasicBlock,
    timing: ScheduleTiming,
    allocation: RegisterAllocation,
    discipline: DelayDiscipline = DelayDiscipline.NOP_PADDED,
    comment_timing: bool = False,
) -> AssemblyProgram:
    """Emit assembly for a scheduled, register-allocated block.

    ``timing`` and ``allocation`` must describe the same order.
    """
    if timing.order != allocation.order:
        raise ValueError("timing and allocation describe different orders")

    reg_names = {
        ident: f"R{reg}" for ident, reg in allocation.registers.items()
    }
    lines: List[str] = [f"; block {block.name} ({discipline.value})"]
    nops = 0
    for pos, ident in enumerate(timing.order):
        t = block.by_ident(ident)
        eta = timing.etas[pos]
        body = _render_instruction(t, allocation, reg_names)
        suffix = (
            f"    ; t={timing.issue_times[pos]}" if comment_timing else ""
        )
        if discipline is DelayDiscipline.NOP_PADDED:
            lines.extend(["NOP"] * eta)
            nops += eta
            lines.append(body + suffix)
        elif discipline is DelayDiscipline.EXPLICIT_INTERLOCK:
            lines.append(f"[wait={eta}] {body}{suffix}")
        else:  # implicit interlock: hardware finds the delays itself
            note = f"    ; hw stalls {eta}" if eta and comment_timing else suffix
            lines.append(body + note)

    return AssemblyProgram(
        name=block.name,
        discipline=discipline,
        lines=tuple(lines),
        num_registers_used=allocation.num_registers_used,
        nop_count=nops,
    )


def padded_stream(timing: ScheduleTiming) -> List[Optional[int]]:
    """The (ident | NOP) issue stream a NOP-padded program induces —
    directly consumable by :func:`repro.simulator.PipelineSimulator.run_padded`."""
    stream: List[Optional[int]] = []
    for ident, eta in zip(timing.order, timing.etas):
        stream.extend([None] * eta)
        stream.append(ident)
    return stream


def explicit_stream(timing: ScheduleTiming) -> List[Tuple[int, int]]:
    """(ident, wait) pairs for the explicit-interlock discipline."""
    return list(zip(timing.order, timing.etas))
