"""Assembly emission for the synthetic target, in all three delay
disciplines of section 2.2."""

from .asmparser import AsmInstruction, AsmSyntaxError, parse_assembly
from .assembly import (
    AssemblyProgram,
    DelayDiscipline,
    explicit_stream,
    generate_assembly,
    padded_stream,
)

__all__ = [
    "AssemblyProgram",
    "DelayDiscipline",
    "explicit_stream",
    "generate_assembly",
    "padded_stream",
    "AsmInstruction",
    "AsmSyntaxError",
    "parse_assembly",
]
