"""Parser for the generated assembly text.

Closes the last gap in the round trip: everything else in the test suite
exercises in-memory structures, but a compiler's actual artifact is
*text*.  This parser reads the output of
:func:`repro.codegen.assembly.generate_assembly` (any of the three delay
disciplines) back into instruction records that the register-level
machine (:mod:`repro.simulator.register_machine`) can execute.

Accepted syntax, per line::

    ; comment                      (ignored; also stripped from line ends)
    NOP
    [wait=K] <instruction>         (explicit-interlock prefix)
    LI   Rd, imm
    LD   Rd, var
    ST   var, Rs
    MOV  Rd, Rs
    NEG  Rd, Rs
    ADD|SUB|MUL|DIV  Rd, Ra, Rb
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ir.ops import Opcode


class AsmSyntaxError(ValueError):
    """Raised on malformed assembly text."""

    def __init__(self, message: str, line_no: int):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


#: Mnemonic -> (opcode, operand shape).  Shapes: "ri" = reg, imm;
#: "rv" = reg, var; "vr" = var, reg; "rr" = reg, reg; "rrr" = three regs.
MNEMONICS = {
    "LI": (Opcode.CONST, "ri"),
    "LD": (Opcode.LOAD, "rv"),
    "ST": (Opcode.STORE, "vr"),
    "MOV": (Opcode.COPY, "rr"),
    "NEG": (Opcode.NEG, "rr"),
    "ADD": (Opcode.ADD, "rrr"),
    "SUB": (Opcode.SUB, "rrr"),
    "MUL": (Opcode.MUL, "rrr"),
    "DIV": (Opcode.DIV, "rrr"),
}

_REG_RE = re.compile(r"^R(\d+)$")
_WAIT_RE = re.compile(r"^\[wait=(\d+)\]\s*(.*)$")


@dataclass(frozen=True)
class AsmInstruction:
    """One parsed instruction (NOPs become ``wait`` on the successor)."""

    opcode: Opcode
    dest_reg: Optional[int] = None  # destination register, if any
    src_regs: Tuple[int, ...] = ()
    variable: Optional[str] = None  # LD source / ST destination
    immediate: Optional[int] = None
    wait: int = 0  # NOPs / wait-count preceding this instruction
    line_no: int = 0

    def __str__(self) -> str:
        prefix = f"[wait={self.wait}] " if self.wait else ""
        return f"{prefix}{self.opcode.value} (line {self.line_no})"


def _parse_reg(text: str, line_no: int) -> int:
    m = _REG_RE.match(text.strip())
    if not m:
        raise AsmSyntaxError(f"expected a register, got {text.strip()!r}", line_no)
    return int(m.group(1))


def parse_assembly(text: str) -> List[AsmInstruction]:
    """Parse generated assembly into executable instruction records.

    Standalone ``NOP`` lines fold into the following instruction's
    ``wait`` count (trailing NOPs are dropped — they pad nothing).
    """
    out: List[AsmInstruction] = []
    pending_wait = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        wait_match = _WAIT_RE.match(line)
        explicit_wait = 0
        if wait_match:
            explicit_wait = int(wait_match.group(1))
            line = wait_match.group(2).strip()
            if not line:
                raise AsmSyntaxError("wait tag without an instruction", line_no)
        if line.upper() == "NOP":
            if wait_match:
                raise AsmSyntaxError("NOP cannot carry a wait tag", line_no)
            pending_wait += 1
            continue
        fields = line.replace(",", " ").split()
        mnemonic = fields[0].upper()
        if mnemonic not in MNEMONICS:
            raise AsmSyntaxError(f"unknown mnemonic {fields[0]!r}", line_no)
        opcode, shape = MNEMONICS[mnemonic]
        operands = fields[1:]
        expected = len(shape)
        if len(operands) != expected:
            raise AsmSyntaxError(
                f"{mnemonic} expects {expected} operands, got {len(operands)}",
                line_no,
            )
        wait = pending_wait + explicit_wait
        pending_wait = 0
        if shape == "ri":
            try:
                imm = int(operands[1])
            except ValueError:
                raise AsmSyntaxError(
                    f"bad immediate {operands[1]!r}", line_no
                ) from None
            out.append(
                AsmInstruction(
                    opcode,
                    dest_reg=_parse_reg(operands[0], line_no),
                    immediate=imm,
                    wait=wait,
                    line_no=line_no,
                )
            )
        elif shape == "rv":
            out.append(
                AsmInstruction(
                    opcode,
                    dest_reg=_parse_reg(operands[0], line_no),
                    variable=operands[1],
                    wait=wait,
                    line_no=line_no,
                )
            )
        elif shape == "vr":
            out.append(
                AsmInstruction(
                    opcode,
                    variable=operands[0],
                    src_regs=(_parse_reg(operands[1], line_no),),
                    wait=wait,
                    line_no=line_no,
                )
            )
        elif shape == "rr":
            out.append(
                AsmInstruction(
                    opcode,
                    dest_reg=_parse_reg(operands[0], line_no),
                    src_regs=(_parse_reg(operands[1], line_no),),
                    wait=wait,
                    line_no=line_no,
                )
            )
        else:  # rrr
            out.append(
                AsmInstruction(
                    opcode,
                    dest_reg=_parse_reg(operands[0], line_no),
                    src_regs=(
                        _parse_reg(operands[1], line_no),
                        _parse_reg(operands[2], line_no),
                    ),
                    wait=wait,
                    line_no=line_no,
                )
            )
    return out
