"""Shared argparse machinery for the ``repro`` command family.

Every subcommand (``repro compile|experiments|verify|bench|serve`` and
the legacy per-tool console scripts) historically declared its own
``--engine``/``--seed``/``--stats-json``/budget flags, and their names,
defaults and help strings drifted.  This module is the single source of
truth: :func:`common_flags` builds an ``add_help=False`` parent parser
carrying any subset of the canonical flags, which each tool passes to
``argparse.ArgumentParser(parents=[...])``.

The registry deliberately covers only flags whose *meaning* is shared
across tools.  ``repro-compile``'s ``--verify MEM`` (which takes an
initial-memory mapping) is a different contract from the boolean
``--verify`` of the experiments/serve tools, so it stays tool-local.
"""

from __future__ import annotations

import argparse
from typing import Dict, Iterable, Optional, Tuple

from .sched.search import DEFAULT_CURTAIL

__all__ = ["common_flags", "COMMON_FLAGS"]

#: flag name -> (argparse args, argparse kwargs).  One entry per shared
#: flag; tools opt into the subset they support.
COMMON_FLAGS: Dict[str, Tuple[tuple, dict]] = {
    "engine": (
        ("--engine",),
        dict(
            choices=("fast", "reference", "vector", "native"),
            default="fast",
            help="search engine: the flattened array core (fast), the "
            "NumPy-batched variant of it (vector; falls back to fast "
            "when numpy is missing), the compiled C hot core (native; "
            "falls back to fast when no C compiler is found) or the "
            "recursive reference — bit-for-bit identical results",
        ),
    ),
    "seed": (
        ("--seed",),
        dict(type=int, default=1990, help="master seed"),
    ),
    "curtail": (
        ("--curtail",),
        dict(
            type=int,
            default=DEFAULT_CURTAIL,
            metavar="LAMBDA",
            help=f"search curtail point lambda (default {DEFAULT_CURTAIL:,})",
        ),
    ),
    "stats-json": (
        ("--stats-json",),
        dict(
            metavar="PATH",
            default=None,
            help="write telemetry (counters, phase times) to PATH as JSON",
        ),
    ),
    "verify": (
        ("--verify",),
        dict(
            action="store_true",
            help="re-derive every published schedule through the "
            "independent certificate checker (repro.verify); any "
            "mismatch aborts the run",
        ),
    ),
    "optimality": (
        ("--optimality",),
        dict(
            action="store_true",
            help="run the ILP witness (repro.ilp) against every search "
            "result: assert omega-equality when both complete, record a "
            "certified optimality gap (LP dual bound) when curtailed",
        ),
    ),
    "block-timeout": (
        ("--block-timeout",),
        dict(
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-block wall-clock budget; blocks over budget degrade "
            "down the ladder instead of stalling",
        ),
    ),
    "run-timeout": (
        ("--run-timeout",),
        dict(
            type=float,
            default=None,
            metavar="SECONDS",
            help="run-level wall-clock budget; blocks past the deadline "
            "degrade down the ladder (split windows, then list seeds)",
        ),
    ),
    "run-omega-budget": (
        ("--run-omega-budget",),
        dict(
            type=int,
            default=None,
            metavar="CALLS",
            help="run-level Ω-call budget; once spent, remaining blocks "
            "publish their list-schedule seeds",
        ),
    ),
}


def common_flags(
    include: Iterable[str],
    overrides: Optional[Dict[str, dict]] = None,
) -> argparse.ArgumentParser:
    """A parent parser carrying the requested shared flags.

    ``overrides`` may refine per-tool *presentation* (help text, default)
    of a flag without renaming it — e.g. the experiments CLI explains
    what ``--verify`` aborts in population terms.
    """
    parent = argparse.ArgumentParser(add_help=False)
    for name in include:
        try:
            args, kwargs = COMMON_FLAGS[name]
        except KeyError:
            raise ValueError(f"unknown common flag {name!r}") from None
        kwargs = dict(kwargs)
        if overrides and name in overrides:
            kwargs.update(overrides[name])
        parent.add_argument(*args, **kwargs)
    return parent
