"""Synthetic benchmark generation (section 5.2 and the Table 6
statement-frequency substitute)."""

from .generator import (
    GeneratedBlock,
    generate_block,
    generate_program,
    variable_names,
)
from .kernels import KERNELS, KERNELS_BY_NAME, Kernel, get_kernel
from .population import (
    BlockParams,
    PopulationSpec,
    generate_from_params,
    sample_population,
    sample_population_params,
    size_histogram,
)
from .stats import (
    DEFAULT_PROFILE,
    OPERATOR_FREQUENCIES,
    STATEMENT_FREQUENCIES,
    GeneratorProfile,
)

__all__ = [
    "DEFAULT_PROFILE",
    "GeneratorProfile",
    "OPERATOR_FREQUENCIES",
    "STATEMENT_FREQUENCIES",
    "GeneratedBlock",
    "generate_block",
    "generate_program",
    "variable_names",
    "BlockParams",
    "PopulationSpec",
    "generate_from_params",
    "sample_population",
    "sample_population_params",
    "size_histogram",
    "KERNELS",
    "KERNELS_BY_NAME",
    "Kernel",
    "get_kernel",
]
