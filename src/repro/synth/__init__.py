"""Synthetic benchmark generation (section 5.2 and the Table 6
statement-frequency substitute)."""

from .stats import (
    DEFAULT_PROFILE,
    GeneratorProfile,
    OPERATOR_FREQUENCIES,
    STATEMENT_FREQUENCIES,
)
from .generator import (
    GeneratedBlock,
    generate_block,
    generate_program,
    variable_names,
)
from .population import PopulationSpec, sample_population, size_histogram
from .kernels import KERNELS, KERNELS_BY_NAME, Kernel, get_kernel

__all__ = [
    "DEFAULT_PROFILE",
    "GeneratorProfile",
    "OPERATOR_FREQUENCIES",
    "STATEMENT_FREQUENCIES",
    "GeneratedBlock",
    "generate_block",
    "generate_program",
    "variable_names",
    "PopulationSpec",
    "sample_population",
    "size_histogram",
    "KERNELS",
    "KERNELS_BY_NAME",
    "Kernel",
    "get_kernel",
]
