"""Random basic-block generator (section 5.2).

*"This program requires as input the number of statements, variables,
and constants desired in the generated code.  It then generates a random
sequence of assignment statements satisfying the desired conditions."*

:func:`generate_program` produces the assignment-statement AST;
:func:`generate_block` additionally runs it through the real front end
(lowering + the full optimizer), exactly the pipeline the paper's
benchmarks took before scheduling.  Everything is reproducible from an
integer seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..frontend.ast import Assignment, Binary, Constant, Expr, Program, Unary, VarRead
from ..frontend.lowering import lower_program
from ..ir.block import BasicBlock
from ..opt.manager import optimize_block
from .stats import DEFAULT_PROFILE, GeneratorProfile


def _weighted_choice(
    rng: random.Random, table: Sequence[Tuple[str, float]]
) -> str:
    roll = rng.random()
    acc = 0.0
    for name, weight in table:
        acc += weight
        if roll < acc:
            return name
    return table[-1][0]  # numerical slack lands on the last entry


def variable_names(count: int) -> Tuple[str, ...]:
    """``v0, v1, ...`` — the variable pool for generated programs."""
    if count < 1:
        raise ValueError("need at least one variable")
    return tuple(f"v{i}" for i in range(count))


def generate_program(
    statements: int,
    variables: int,
    constants: int,
    seed: int,
    profile: GeneratorProfile = DEFAULT_PROFILE,
) -> Program:
    """Generate a random straight-line program.

    Parameters mirror the paper's generator inputs: the number of
    assignment statements, the size of the variable pool, and the number
    of distinct constants available to the program.
    """
    if statements < 1:
        raise ValueError("need at least one statement")
    if constants < 1:
        raise ValueError("need at least one constant")
    rng = random.Random(seed)
    names = variable_names(variables)
    # The paper fixes the number of *distinct* constants; draw the pool
    # once, then statements sample from it.
    pool_size = min(constants, profile.constant_range)
    constant_pool = rng.sample(range(1, profile.constant_range + 1), pool_size)
    operators = profile.operators()

    def var() -> VarRead:
        return VarRead(rng.choice(names))

    def const() -> Constant:
        return Constant(rng.choice(constant_pool))

    def op() -> str:
        return _weighted_choice(rng, operators)

    def statement() -> Assignment:
        target = rng.choice(names)
        kind = _weighted_choice(rng, profile.statement_frequencies)
        if kind == "copy":
            value: Expr = var()
        elif kind == "const":
            value = const()
        elif kind == "negate":
            value = Unary("-", var())
        elif kind == "binop_vv":
            value = Binary(op(), var(), var())
        elif kind == "binop_vc":
            value = Binary(op(), var(), const())
        elif kind == "chain3":
            value = Binary(op(), Binary(op(), var(), var()), var())
        elif kind == "balanced4":
            value = Binary(
                op(),
                Binary(op(), var(), var()),
                Binary(op(), var(), const()),
            )
        else:  # pragma: no cover - profile validation prevents this
            raise AssertionError(f"unknown statement kind {kind}")
        return Assignment(target, value)

    return Program([statement() for _ in range(statements)])


@dataclass(frozen=True)
class GeneratedBlock:
    """A synthetic benchmark block and its provenance."""

    block: BasicBlock
    program: Program
    statements: int
    variables: int
    constants: int
    seed: int

    def __len__(self) -> int:
        return len(self.block)


def generate_block(
    statements: int,
    variables: int,
    constants: int,
    seed: int,
    profile: GeneratorProfile = DEFAULT_PROFILE,
    optimize: bool = True,
    name: Optional[str] = None,
) -> GeneratedBlock:
    """Generate a program and push it through the front end.

    With ``optimize=True`` (default, matching the paper) the block is the
    optimizer's output: "if traditional optimizations are applied, the
    general effect is that finding good schedules becomes more
    difficult", which is why the paper applies them before measuring.
    """
    program = generate_program(statements, variables, constants, seed, profile)
    label = name or f"synth-s{statements}-v{variables}-c{constants}-r{seed}"
    block = lower_program(program, label)
    if optimize and len(block):
        block = optimize_block(block)
    return GeneratedBlock(
        block=block,
        program=program,
        statements=statements,
        variables=variables,
        constants=constants,
        seed=seed,
    )
