"""A suite of hand-written loop kernels for modulo scheduling.

The straight-line suite (:mod:`repro.synth.kernels`) exercises one-shot
block scheduling; these are the loop-shaped counterparts — small bounded
counting loops whose steady state is where software pipelining pays.
Each kernel is a complete front-end program (one ``for`` loop), an
initial memory for semantic verification, and a note on its recurrence
character: the carried-dependence structure is what separates loops that
pipeline well (long independent work per iteration) from loops pinned by
a tight recurrence (RecMII-bound).

``scaled-update`` is the suite's witness that modulo scheduling beats
iterating the block scheduler: on the paper-simulation machine its
searched II is strictly below the steady-state list II, which the test
suite and the verify oracle's ``loop`` tier both pin.

Used by ``repro.experiments.loops`` (per-kernel II comparison across
machines) and ``repro verify --loops`` (certificate + brute-force oracle
sweep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..frontend import ForLoop, lower_loop, parse_program
from ..ir.loop import LoopBlock


@dataclass(frozen=True)
class LoopKernel:
    """One loop-shaped benchmark kernel."""

    name: str
    source: str  # a complete program: exactly one ``for`` loop
    memory: Dict[str, int]
    character: str  # one-line recurrence-structure note

    def __str__(self) -> str:
        return f"{self.name}: {self.character}"

    @property
    def loop_ast(self) -> ForLoop:
        program = parse_program(self.source)
        (statement,) = program.statements
        assert isinstance(statement, ForLoop)
        return statement

    def lower(self) -> LoopBlock:
        return lower_loop(self.loop_ast, name=self.name)


def _kernel(
    name: str, source: str, memory: Dict[str, int], character: str
) -> LoopKernel:
    return LoopKernel(name, source, dict(memory), character)


LOOP_KERNELS: Tuple[LoopKernel, ...] = (
    _kernel(
        "scaled-update",
        "for i in 0..8 { p = a * b; a = a + b; }",
        {"a": 3, "b": 2},
        "product + cheap update: modulo overlap beats the iterated "
        "block schedule outright (searched II < list II)",
    ),
    _kernel(
        "geo-sum",
        "for i in 0..6 { s = s + x; x = x * r; }",
        {"s": 0, "x": 1, "r": 3},
        "two coupled carried chains (accumulator and geometric term)",
    ),
    _kernel(
        "horner-stream",
        "for i in 0..5 { y = y * x + c; }",
        {"y": 1, "x": 2, "c": 5},
        "one tight multiply-add recurrence: RecMII-bound, nothing to "
        "overlap",
    ),
    _kernel(
        "indexed-accumulate",
        "for i in 0..7 { s = s + a * i; }",
        {"s": 0, "a": 4},
        "reads the induction variable, so lowering materializes the "
        "increment in the body",
    ),
    _kernel(
        "decay",
        "for i in 0..6 { v = v * d; }",
        {"v": 100, "d": 2},
        "minimal body: a single carried multiply chain",
    ),
    _kernel(
        "coupled-triple",
        "for i in 0..6 { t = a + b; a = b * c; b = t + c; }",
        {"a": 1, "b": 2, "c": 3},
        "three statements with cross-coupled carried flow — the "
        "recurrence and resource bounds compete",
    ),
)

#: Loop kernels by name.
LOOP_KERNELS_BY_NAME: Dict[str, LoopKernel] = {
    k.name: k for k in LOOP_KERNELS
}


def get_loop_kernel(name: str) -> LoopKernel:
    try:
        return LOOP_KERNELS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(LOOP_KERNELS_BY_NAME))
        raise KeyError(
            f"unknown loop kernel {name!r} (known: {known})"
        ) from None
