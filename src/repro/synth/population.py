"""Block populations for the paper's experiments.

Section 5.3 evaluates 16,000 synthetic blocks "containing various numbers
of statements, variables, and constants" whose resulting size
distribution (Figure 5) is right-skewed: most blocks have 10-30 tuples,
the mean is ~20.6, and a thin tail extends beyond 40 ("though programs
with basic blocks that have more than forty instructions are very rare,
we have even included such blocks").

:func:`sample_population` reproduces that shape by drawing the
generator's inputs from a gamma-distributed statement count and modest
variable/constant pools, then pushing each draw through the real front
end.  All sampling is reproducible from one master seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .generator import GeneratedBlock, generate_block
from .stats import DEFAULT_PROFILE, GeneratorProfile


@dataclass(frozen=True)
class PopulationSpec:
    """Sampling parameters for a block population.

    The defaults are calibrated so the resulting tuple-count distribution
    matches Figure 5 (mean ≈ 20.6, right-skewed, occasional 40+ blocks);
    ``tests/test_population.py`` pins that calibration.
    """

    #: Gamma parameters for the statement count (mean = shape * scale).
    statement_shape: float = 3.4
    statement_scale: float = 4.7
    min_statements: int = 2
    max_statements: int = 70
    min_variables: int = 3
    max_variables: int = 12
    min_constants: int = 2
    max_constants: int = 8
    profile: GeneratorProfile = DEFAULT_PROFILE


@dataclass(frozen=True)
class BlockParams:
    """The generator inputs for one population member.

    Sampling the master RNG stream and *generating* blocks are separable:
    the stream draws are cheap (a few RNG calls per block) while
    generation runs the full front end.  The parallel population engine
    exploits this — the parent process samples the parameter stream once,
    then workers rebuild their assigned blocks independently via
    :func:`generate_from_params`, preserving bit-identical blocks without
    replaying generation serially.
    """

    index: int
    statements: int
    variables: int
    constants: int
    seed: int


def sample_population_params(
    n_blocks: int,
    master_seed: int = 1990,
    spec: PopulationSpec = PopulationSpec(),
) -> Iterator[BlockParams]:
    """Yield the generator inputs for each of ``n_blocks`` members.

    Consumes the master RNG stream exactly as :func:`sample_population`
    does, so ``generate_from_params`` over these parameters reproduces
    that population bit for bit.
    """
    rng = random.Random(master_seed)
    for index in range(n_blocks):
        statements = int(rng.gammavariate(spec.statement_shape, spec.statement_scale))
        statements = max(spec.min_statements, min(spec.max_statements, statements))
        variables = rng.randint(spec.min_variables, spec.max_variables)
        constants = rng.randint(spec.min_constants, spec.max_constants)
        seed = rng.getrandbits(32)
        yield BlockParams(index, statements, variables, constants, seed)


def generate_from_params(
    params: BlockParams,
    spec: PopulationSpec = PopulationSpec(),
    optimize: bool = True,
) -> GeneratedBlock:
    """Rebuild one population member from its sampled parameters."""
    return generate_block(
        params.statements,
        params.variables,
        params.constants,
        params.seed,
        profile=spec.profile,
        optimize=optimize,
        name=f"pop-{params.index}",
    )


def sample_population(
    n_blocks: int,
    master_seed: int = 1990,
    spec: PopulationSpec = PopulationSpec(),
    optimize: bool = True,
) -> Iterator[GeneratedBlock]:
    """Yield ``n_blocks`` reproducible synthetic blocks.

    Blocks are generated lazily so populations of paper scale (16,000)
    never sit in memory at once.
    """
    for params in sample_population_params(n_blocks, master_seed, spec):
        yield generate_from_params(params, spec, optimize)


def size_histogram(
    blocks: List[GeneratedBlock], bucket: int = 5
) -> List[Tuple[int, int]]:
    """(bucket start, count) pairs over block tuple counts — Figure 5."""
    counts: dict[int, int] = {}
    for gb in blocks:
        start = (len(gb.block) // bucket) * bucket
        counts[start] = counts.get(start, 0) + 1
    return sorted(counts.items())
