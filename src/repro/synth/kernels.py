"""A suite of hand-written realistic kernels.

The paper's synthetic blocks are statistically realistic; these are
*literally* realistic — the straight-line bodies of the numeric codes
that motivated pipeline scheduling in the first place (§1's multiple
functional units "typically, independent adders and multipliers"), in
the front-end source language.  Each comes with an initial memory for
verification and a note on its dependence character.

Used by ``repro.experiments.kernels`` (per-kernel scheduler comparison)
and the test suite (every kernel must compile, verify, and be provably
optimally scheduled on every deterministic preset machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Kernel:
    """One straight-line benchmark kernel."""

    name: str
    source: str
    memory: Dict[str, int]
    character: str  # one-line dependence-structure note

    def __str__(self) -> str:
        return f"{self.name}: {self.character}"


def _kernel(name: str, source: str, memory: Dict[str, int], character: str) -> Kernel:
    return Kernel(name, source, dict(memory), character)


KERNELS: Tuple[Kernel, ...] = (
    _kernel(
        "dot4",
        """
        acc = v1 * w1;
        acc = acc + v2 * w2;
        acc = acc + v3 * w3;
        acc = acc + v4 * w4;
        """,
        {"v1": 1, "w1": 2, "v2": 3, "w2": 4, "v3": 5, "w3": 6, "v4": 7, "w4": 8},
        "multiply-accumulate chain; multiplies independent, adds serial",
    ),
    _kernel(
        "horner5",
        """
        y = c5;
        y = y * x + c4;
        y = y * x + c3;
        y = y * x + c2;
        y = y * x + c1;
        y = y * x + c0;
        """,
        {"x": 3, "c0": 1, "c1": 2, "c2": 3, "c3": 4, "c4": 5, "c5": 6},
        "worst case: one serial multiply chain, nothing to overlap",
    ),
    _kernel(
        "complex-mul",
        """
        re = ar * br - ai * bi;
        im = ar * bi + ai * br;
        """,
        {"ar": 3, "ai": 4, "br": 5, "bi": 6},
        "four independent multiplies feeding two adds — ideal overlap",
    ),
    _kernel(
        "fir3",
        """
        y0 = h0 * x0 + h1 * x1 + h2 * x2;
        y1 = h0 * x1 + h1 * x2 + h2 * x3;
        """,
        {"h0": 1, "h1": 2, "h2": 3, "x0": 4, "x1": 5, "x2": 6, "x3": 7},
        "two independent tap sums sharing loads",
    ),
    _kernel(
        "mat2-vec",
        """
        y0 = a00 * x0 + a01 * x1;
        y1 = a10 * x0 + a11 * x1;
        """,
        {"a00": 1, "a01": 2, "a10": 3, "a11": 4, "x0": 5, "x1": 6},
        "two independent row dot-products",
    ),
    _kernel(
        "norm2",
        """
        s = x * x + y * y + z * z;
        inv = 1 / s;
        nx = x * inv;
        ny = y * inv;
        nz = z * inv;
        """,
        {"x": 1, "y": 2, "z": 2},
        "reduction into a divide, then three independent scales",
    ),
    _kernel(
        "lerp4",
        """
        d0 = b0 - a0; r0 = a0 + d0 * t;
        d1 = b1 - a1; r1 = a1 + d1 * t;
        d2 = b2 - a2; r2 = a2 + d2 * t;
        d3 = b3 - a3; r3 = a3 + d3 * t;
        """,
        {"a0": 1, "b0": 9, "a1": 2, "b1": 8, "a2": 3, "b2": 7, "a3": 4, "b3": 6, "t": 2},
        "four independent interpolations — embarrassingly schedulable",
    ),
    _kernel(
        "determinant3",
        """
        m0 = e * i - f * h;
        m1 = d * i - f * g;
        m2 = d * h - e * g;
        det = a * m0 - b * m1 + c * m2;
        """,
        {"a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "f": 6, "g": 7, "h": 8, "i": 9},
        "three independent 2x2 minors feeding a final combine",
    ),
    _kernel(
        "running-sum",
        """
        s1 = s0 + x1;
        s2 = s1 + x2;
        s3 = s2 + x3;
        s4 = s3 + x4;
        mean4 = s4 / 4;
        """,
        {"s0": 0, "x1": 1, "x2": 2, "x3": 3, "x4": 4},
        "serial add chain (cheap ops) ending in a divide",
    ),
    _kernel(
        "poly-eval-pair",
        """
        p = (a2 * x + a1) * x + a0;
        q = (b2 * x + b1) * x + b0;
        r = p * q;
        """,
        {"x": 2, "a0": 1, "a1": 2, "a2": 3, "b0": 4, "b1": 5, "b2": 6},
        "two Horner chains that interleave perfectly, then join",
    ),
)

#: Kernels by name.
KERNELS_BY_NAME: Dict[str, Kernel] = {k.name: k for k in KERNELS}


def get_kernel(name: str) -> Kernel:
    try:
        return KERNELS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(KERNELS_BY_NAME))
        raise KeyError(f"unknown kernel {name!r} (known: {known})") from None
