"""Statement-type statistics for the synthetic benchmark generator.

Section 5.2: *"A C program was developed to randomly generate basic
blocks ... The frequency of the types of assignment statements
corresponds loosely to the instruction frequency distributions found in
[AIW75]."*  Table 6 itself is illegible in the scan, so the frequencies
below are reconstructed from the [AIW75] measurements the paper cites
(Alexander & Wortman's static/dynamic XPL study) and the paper's own
remarks; the documented shape is:

* simple assignments (copy or constant) dominate;
* a single-operator right-hand side is the most common compound form;
* additive operators far outnumber multiplicative ones;
* deeply nested expressions are rare.

``Load``/``Store`` frequencies are deliberately absent, as in the paper:
"These instructions are provided as necessary during code generation and
optimization."

The exact numbers are a calibrated substitution (see DESIGN.md §5): what
the evaluation needs is blocks whose dependence/conflict density makes
the headline shapes reproducible, and the distribution below yields
blocks matching the paper's reported profile (initial NOPs growing
linearly with block size, final NOPs near-constant, ~99% of searches
completing at moderate curtail points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Statement templates and their selection weights (the Table 6 stand-in).
#:
#:  ==============  =====================================  =======
#:  kind            shape                                  weight
#:  ==============  =====================================  =======
#:  copy            v = w                                  0.14
#:  const           v = c                                  0.13
#:  negate          v = -w                                 0.03
#:  binop_vv        v = w op x                             0.32
#:  binop_vc        v = w op c                             0.23
#:  chain3          v = w op x op y                        0.10
#:  balanced4       v = (w op x) op (y op z)               0.05
#:  ==============  =====================================  =======
STATEMENT_FREQUENCIES: Dict[str, float] = {
    "copy": 0.14,
    "const": 0.13,
    "negate": 0.03,
    "binop_vv": 0.32,
    "binop_vc": 0.23,
    "chain3": 0.10,
    "balanced4": 0.05,
}

#: Operator mix (additive operators lead per [AIW75]; the multiply share
#: is calibrated so the population's program-order NOP density matches
#: Table 7's "Avg. Initial NOPs" of ~0.46 per instruction — multiplies
#: are what exercise the latency-4 multiplier pipeline; divides are rare).
OPERATOR_FREQUENCIES: Dict[str, float] = {
    "+": 0.34,
    "-": 0.22,
    "*": 0.36,
    "/": 0.08,
}


@dataclass(frozen=True)
class GeneratorProfile:
    """A complete parameterization of the statement generator."""

    statement_frequencies: Tuple[Tuple[str, float], ...] = tuple(
        STATEMENT_FREQUENCIES.items()
    )
    operator_frequencies: Tuple[Tuple[str, float], ...] = tuple(
        OPERATOR_FREQUENCIES.items()
    )
    #: Generated constants are drawn uniformly from 1..constant_range.
    #: Zero is excluded so random programs remain executable (no
    #: accidental constant division by zero) — scheduling results do not
    #: depend on literal values at all.
    constant_range: int = 99
    #: When True, '/' is excluded from generated operators entirely
    #: (useful for tests that execute generated programs on random
    #: memories without fault handling).
    exclude_division: bool = False

    def __post_init__(self) -> None:
        for name, table in (
            ("statement", self.statement_frequencies),
            ("operator", self.operator_frequencies),
        ):
            total = sum(w for _, w in table)
            if abs(total - 1.0) > 1e-9:
                raise ValueError(
                    f"{name} frequencies must sum to 1 (got {total})"
                )
            if any(w < 0 for _, w in table):
                raise ValueError(f"{name} frequencies must be non-negative")
        if self.constant_range < 1:
            raise ValueError("constant_range must be positive")

    def operators(self) -> Tuple[Tuple[str, float], ...]:
        if not self.exclude_division:
            return self.operator_frequencies
        kept = [(op, w) for op, w in self.operator_frequencies if op != "/"]
        total = sum(w for _, w in kept)
        return tuple((op, w / total) for op, w in kept)


#: The default profile used by every experiment.
DEFAULT_PROFILE = GeneratorProfile()
