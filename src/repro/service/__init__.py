"""Scheduling as a service: canonical-form result cache + batch daemon.

Layers:

* :mod:`repro.service.fingerprint` — a label-free canonical form of one
  (block, machine, options) scheduling problem, hashed into a stable
  cache key under which isomorphic problems collide.
* :mod:`repro.service.cache` — :class:`ScheduleCache`, a two-tier
  (in-process LRU over a disk-backed, fsync'd store) memo of full
  ``SearchResult``s, certificate-verified on insert; corrupt disk
  entries are quarantined, never silently dropped.
* :mod:`repro.service.pool` — :class:`WorkerPool`, the supervised
  pre-fork worker fleet that gives the daemon crash isolation: a
  segfault, hang, or OOM kills one worker, the request retries on a
  fresh one and degrades honestly past the retry cap.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  ``repro serve`` batch daemon speaking the ``repro-service/2`` JSON
  protocol (admission control, per-request deadlines, liveness/readiness
  health, graceful drain), and its retrying client.
"""

from .cache import CacheIntegrityError, ScheduleCache
from .client import ServiceClient, ServiceClientError
from .fingerprint import CanonicalForm, fingerprint_problem
from .pool import PoolSaturated, WorkerPool
from .server import (
    SchedulingService,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadError,
    create_server,
    execute_block,
)

__all__ = [
    "CanonicalForm",
    "fingerprint_problem",
    "ScheduleCache",
    "CacheIntegrityError",
    "SchedulingService",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceDrainingError",
    "create_server",
    "execute_block",
    "ServiceClient",
    "ServiceClientError",
    "WorkerPool",
    "PoolSaturated",
]
