"""Scheduling as a service: canonical-form result cache + batch daemon.

Layers:

* :mod:`repro.service.fingerprint` — a label-free canonical form of one
  (block, machine, options) scheduling problem, hashed into a stable
  cache key under which isomorphic problems collide.
* :mod:`repro.service.cache` — :class:`ScheduleCache`, a two-tier
  (in-process LRU over a disk-backed, fsync'd store) memo of full
  ``SearchResult``s, certificate-verified on insert.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  ``repro serve`` batch daemon speaking the ``repro-service/1`` JSON
  protocol, and its client.
"""

from .cache import CacheIntegrityError, ScheduleCache
from .client import ServiceClient, ServiceClientError
from .fingerprint import CanonicalForm, fingerprint_problem
from .server import SchedulingService, ServiceError, create_server

__all__ = [
    "CanonicalForm",
    "fingerprint_problem",
    "ScheduleCache",
    "CacheIntegrityError",
    "SchedulingService",
    "ServiceError",
    "create_server",
    "ServiceClient",
    "ServiceClientError",
]
