"""Command-line entry point: ``repro serve`` (the scheduling daemon).

Examples::

    repro serve --port 8123 --cache ~/.cache/repro-schedules
    repro serve --unix /tmp/repro.sock --curtail 10000
    repro serve --port 0 --ready-file ready.json   # ephemeral port; the
                                                   # bound URL lands in
                                                   # ready.json
    repro serve --workers 4 --queue-limit 64       # bigger fleet
    repro serve --workers 0                        # inline (no pool)

The daemon answers ``POST /v1/schedule`` batches and the
``GET /v1/health`` family (schema ``repro-service/2``; see
docs/file-formats.md).  Scheduling runs on a supervised pre-fork worker
pool (``--workers``, default 2): a worker crash/hang is detected, the
request retried on a fresh worker and, past ``--max-retries``, degraded
to the list seed — never a 500.  ``--workers 0`` schedules inline in
the daemon process (the PR 5 behaviour).  ``--cache DIR`` makes the
canonical-form result store durable and shareable with ``repro
experiments --cache DIR``; without it the cache is in-process only;
``--no-cache`` disables memoization entirely.

SIGTERM drains gracefully: the daemon stops accepting (503), resolves
in-flight requests (completing or degrading them), flushes
``--stats-json`` telemetry and exits 0.  ``--chaos SPEC`` injects
seeded worker faults (``crash=0.1,hang=0.05,seed=7`` — see
``repro.resilience.faults``) for service-level chaos testing.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import List, Optional

from ..cliutil import common_flags
from ..ioutil import atomic_write_json
from ..resilience.budget import BudgetManager
from ..resilience.faults import FaultPlan
from ..resilience.supervisor import SupervisorConfig
from ..sched.search import SearchOptions
from ..telemetry import Telemetry
from .cache import ScheduleCache
from .pool import POOL_HANG_TIMEOUT, WorkerPool
from .server import SchedulingService, create_server


def build_parser(prog: str = "repro-serve") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[
            common_flags(
                (
                    "engine",
                    "curtail",
                    "stats-json",
                    "block-timeout",
                    "run-timeout",
                    "run-omega-budget",
                )
            )
        ],
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="TCP port; 0 (default) binds an ephemeral port (see --ready-file)",
    )
    parser.add_argument(
        "--unix", metavar="PATH", default=None,
        help="serve on a unix-domain socket at PATH instead of TCP",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="supervised worker processes (default 2); 0 schedules "
        "inline in the daemon process",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=32, metavar="N",
        help="admission control: concurrent requests accepted before "
        "shedding with 429 + Retry-After (default 32)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="worker failures per request block before degrading to the "
        "list seed (default 2)",
    )
    parser.add_argument(
        "--hang-timeout", type=float, default=POOL_HANG_TIMEOUT, metavar="S",
        help="seconds without a worker reply (on top of the block's own "
        f"time limit) before it is presumed hung (default {POOL_HANG_TIMEOUT:g})",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=20.0, metavar="S",
        help="SIGTERM grace: seconds to resolve in-flight requests "
        "before force-degrading them (default 20)",
    )
    parser.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="inject seeded worker faults, e.g. 'crash=0.1,hang=0.05,seed=7' "
        "(testing only; see repro.resilience.faults)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="disk-backed canonical-form result store (shared with "
        "repro experiments --cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable result memoization entirely",
    )
    parser.add_argument(
        "--memory-entries", type=int, default=4096, metavar="N",
        help="in-process LRU capacity (default 4096)",
    )
    parser.add_argument(
        "--no-insert-verify", action="store_true",
        help="skip the independent certificate check on cache insert",
    )
    parser.add_argument(
        "--ready-file", metavar="PATH", default=None,
        help="write {url, pid} JSON to PATH once the socket is bound "
        "(how scripts find an ephemeral port)",
    )
    return parser


def main(argv: Optional[List[str]] = None, prog: str = "repro-serve") -> int:
    parser = build_parser(prog)
    args = parser.parse_args(argv)

    if args.no_cache and args.cache:
        parser.error("--no-cache and --cache are mutually exclusive")
    if args.unix and args.port:
        parser.error("--unix and --port are mutually exclusive")
    if args.workers < 0:
        parser.error("--workers must be non-negative")

    cache = None
    if not args.no_cache:
        cache = ScheduleCache(
            path=args.cache,
            memory_entries=args.memory_entries,
            verify_on_insert=not args.no_insert_verify,
        )
    budget = None
    if args.run_timeout is not None or args.run_omega_budget is not None:
        try:
            budget = BudgetManager(
                run_wall_clock=args.run_timeout,
                run_omega_cap=args.run_omega_budget,
            )
        except ValueError as exc:
            parser.error(str(exc))
    fault_plan = None
    if args.chaos:
        try:
            fault_plan = FaultPlan.parse(args.chaos)
        except ValueError as exc:
            parser.error(str(exc))
        print(f"[serve] CHAOS MODE: {args.chaos}", file=sys.stderr, flush=True)

    telemetry = Telemetry()
    pool = None
    if args.workers > 0:
        try:
            config = SupervisorConfig(
                hang_timeout=args.hang_timeout, max_retries=args.max_retries
            )
        except ValueError as exc:
            parser.error(str(exc))
        pool = WorkerPool(
            size=args.workers,
            cache=cache,
            config=config,
            fault_plan=fault_plan,
            hang_timeout=args.hang_timeout,
            on_event=lambda line: print(
                f"[pool] {line}", file=sys.stderr, flush=True
            ),
        )
        try:
            pool.start()
        except (OSError, RuntimeError) as exc:
            print(
                f"{prog}: cannot start worker pool ({exc}); "
                "scheduling inline",
                file=sys.stderr,
                flush=True,
            )
            pool = None
    service = SchedulingService(
        cache=cache,
        options=SearchOptions(curtail=args.curtail, engine=args.engine),
        budget=budget,
        block_timeout=args.block_timeout,
        telemetry=telemetry,
        pool=pool,
        queue_limit=args.queue_limit,
    )
    try:
        server, url = create_server(
            service, host=args.host, port=args.port, unix_path=args.unix
        )
    except OSError as exc:
        print(f"{prog}: cannot bind: {exc}", file=sys.stderr)
        if pool is not None:
            pool.stop(drain_timeout=0.0)
        return 2

    if args.ready_file:
        atomic_write_json(args.ready_file, {"url": url, "pid": os.getpid()})
    store = cache.path if cache is not None and cache.path else (
        "memory" if cache is not None else "off"
    )
    mode = f"{args.workers} workers" if pool is not None else "inline"
    print(f"[serve] listening on {url} (cache: {store}, {mode})", flush=True)

    def write_stats() -> None:
        if args.stats_json:
            telemetry.write_json(
                args.stats_json,
                meta={"url": url, "curtail": args.curtail, "engine": args.engine},
            )
            print(f"[stats] telemetry written to {args.stats_json}")

    # SIGTERM = graceful drain: stop accepting, let in-flight requests
    # resolve (or force-degrade them at the deadline), flush telemetry,
    # exit 0.  The handler only pokes the serve loop; the drain itself
    # runs on the main thread after serve_forever returns.
    terminated = threading.Event()

    def on_sigterm(signum, frame) -> None:  # pragma: no cover - signal path
        terminated.set()
        service.begin_drain()
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, on_sigterm)
    except ValueError:  # pragma: no cover - non-main thread (embedding)
        pass

    def drain_and_close() -> None:
        forced = service.drain(timeout=args.drain_timeout)
        server.server_close()
        if args.unix:
            try:
                os.unlink(args.unix)
            except OSError:
                pass
        if forced:
            print(
                f"[serve] drain force-degraded {forced} in-flight jobs",
                file=sys.stderr,
                flush=True,
            )

    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print(f"\n{prog}: interrupted", file=sys.stderr)
        drain_and_close()
        write_stats()
        return 130
    drain_and_close()
    if terminated.is_set():
        print("[serve] drained on SIGTERM", flush=True)
    write_stats()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
