"""Command-line entry point: ``repro serve`` (the scheduling daemon).

Examples::

    repro serve --port 8123 --cache ~/.cache/repro-schedules
    repro serve --unix /tmp/repro.sock --curtail 10000
    repro serve --port 0 --ready-file ready.json   # ephemeral port; the
                                                   # bound URL lands in
                                                   # ready.json

The daemon answers ``POST /v1/schedule`` batches and ``GET /v1/health``
(schema ``repro-service/1``; see docs/file-formats.md).  ``--cache DIR``
makes the canonical-form result store durable and shareable with
``repro experiments --cache DIR``; without it the cache is in-process
only; ``--no-cache`` disables memoization entirely.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..cliutil import common_flags
from ..ioutil import atomic_write_json
from ..resilience.budget import BudgetManager
from ..sched.search import SearchOptions
from ..telemetry import Telemetry
from .cache import ScheduleCache
from .server import SchedulingService, create_server


def build_parser(prog: str = "repro-serve") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[
            common_flags(
                (
                    "engine",
                    "curtail",
                    "stats-json",
                    "block-timeout",
                    "run-timeout",
                    "run-omega-budget",
                )
            )
        ],
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="TCP port; 0 (default) binds an ephemeral port (see --ready-file)",
    )
    parser.add_argument(
        "--unix", metavar="PATH", default=None,
        help="serve on a unix-domain socket at PATH instead of TCP",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="disk-backed canonical-form result store (shared with "
        "repro experiments --cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable result memoization entirely",
    )
    parser.add_argument(
        "--memory-entries", type=int, default=4096, metavar="N",
        help="in-process LRU capacity (default 4096)",
    )
    parser.add_argument(
        "--no-insert-verify", action="store_true",
        help="skip the independent certificate check on cache insert",
    )
    parser.add_argument(
        "--ready-file", metavar="PATH", default=None,
        help="write {url, pid} JSON to PATH once the socket is bound "
        "(how scripts find an ephemeral port)",
    )
    return parser


def main(argv: Optional[List[str]] = None, prog: str = "repro-serve") -> int:
    parser = build_parser(prog)
    args = parser.parse_args(argv)

    if args.no_cache and args.cache:
        parser.error("--no-cache and --cache are mutually exclusive")
    if args.unix and args.port:
        parser.error("--unix and --port are mutually exclusive")

    cache = None
    if not args.no_cache:
        cache = ScheduleCache(
            path=args.cache,
            memory_entries=args.memory_entries,
            verify_on_insert=not args.no_insert_verify,
        )
    budget = None
    if args.run_timeout is not None or args.run_omega_budget is not None:
        try:
            budget = BudgetManager(
                run_wall_clock=args.run_timeout,
                run_omega_cap=args.run_omega_budget,
            )
        except ValueError as exc:
            parser.error(str(exc))

    telemetry = Telemetry()
    service = SchedulingService(
        cache=cache,
        options=SearchOptions(curtail=args.curtail, engine=args.engine),
        budget=budget,
        block_timeout=args.block_timeout,
        telemetry=telemetry,
    )
    try:
        server, url = create_server(
            service, host=args.host, port=args.port, unix_path=args.unix
        )
    except OSError as exc:
        print(f"{prog}: cannot bind: {exc}", file=sys.stderr)
        return 2

    if args.ready_file:
        atomic_write_json(args.ready_file, {"url": url, "pid": os.getpid()})
    store = cache.path if cache is not None and cache.path else (
        "memory" if cache is not None else "off"
    )
    print(f"[serve] listening on {url} (cache: {store})", flush=True)

    def write_stats() -> None:
        if args.stats_json:
            telemetry.write_json(
                args.stats_json,
                meta={"url": url, "curtail": args.curtail, "engine": args.engine},
            )
            print(f"[stats] telemetry written to {args.stats_json}")

    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print(f"\n{prog}: interrupted", file=sys.stderr)
        write_stats()
        return 130
    finally:
        server.server_close()
        if args.unix:
            try:
                os.unlink(args.unix)
            except OSError:
                pass
    write_stats()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
