"""The batch scheduling daemon — ``repro serve``.

A long-lived process that accepts batches of basic blocks plus a machine
description over HTTP (localhost TCP or a unix-domain socket), schedules
them through the fast branch-and-bound engine, and answers with the
schedules plus per-entry provenance: whether each block was served from
the canonical-form cache (:mod:`repro.service.cache`) and which rung of
the PR 4 degradation ladder published it.

Wire protocol (versioned ``repro-service/1``; see docs/file-formats.md):

``POST /v1/schedule``::

    {
      "schema": "repro-service/1",
      "machine": "paper-simulation" | {machine_to_dict payload},
      "blocks": [{"name": "dot", "tuples": "1: Load #a\\n..."}, ...],
      "options": {"curtail": 50000, "engine": "fast", "max_live": null}
    }

answers ``200`` with one entry per block (same order)::

    {
      "schema": "repro-service/1",
      "machine": "paper-simulation",
      "entries": [
        {"index": 0, "name": "dot", "order": [...], "etas": [...],
         "issue_times": [...], "total_nops": 2, "seed_nops": 4,
         "omega_calls": 37, "completed": true, "degraded": false,
         "ladder": "optimal-search", "cache": "hit"},
        ...
      ],
      "stats": {"hits": 1, "misses": 0, "bypass": 0}
    }

or ``400`` with ``{"error": "..."}`` for malformed requests (bad schema,
unparseable tuples, unknown machine/option, non-deterministic machine).
``GET /v1/health`` reports liveness and the cache counters.

Batches are deduplicated *through* the cache: the first occurrence of a
canonical form is scheduled and stored, every later occurrence — in the
same batch, a later batch, or a population run sharing the same disk
store — is a hit.  Misses run under the server's
:class:`repro.resilience.budget.BudgetManager` clamps, so one
pathological block degrades down the ladder instead of wedging the
daemon.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..experiments.runner import ladder_schedule
from ..ir.dag import DependenceDAG
from ..ir.textual import TupleSyntaxError, parse_block
from ..machine.machine import MachineDescription, MachineValidationError
from ..machine.presets import get_machine
from ..machine.serialize import machine_from_dict
from ..resilience.budget import STEP_LIST_SEED, BudgetManager
from ..sched.list_scheduler import list_schedule
from ..sched.nop_insertion import compute_timing
from ..sched.search import SearchOptions
from ..telemetry import Telemetry
from .cache import BYPASS, ScheduleCache

__all__ = ["SCHEMA", "ServiceError", "SchedulingService", "create_server"]

#: Version tag of the request/response payloads.
SCHEMA = "repro-service/1"

#: ``options`` keys a request may override.  Everything else is pinned
#: by the server's configuration — clients tune the *problem*, not the
#: daemon's resource policy.
_REQUEST_OPTIONS = ("curtail", "engine", "max_live")

#: Request size cap (16 MiB): a stray client cannot OOM the daemon.
MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceError(ValueError):
    """A malformed request (answered with HTTP 400)."""


class SchedulingService:
    """The protocol logic, separated from HTTP plumbing for testing."""

    def __init__(
        self,
        cache: Optional[ScheduleCache] = None,
        options: SearchOptions = SearchOptions(),
        budget: Optional[BudgetManager] = None,
        block_timeout: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.cache = cache
        self.options = options
        self.budget = budget
        self.block_timeout = block_timeout
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        # One lock serializes scheduling: Telemetry and BudgetManager are
        # plain mutable objects, and the searches are CPU-bound anyway —
        # threads exist to keep health checks responsive, not for search
        # parallelism.
        self._lock = threading.Lock()
        if budget is not None:
            budget.start()

    # -- request handling ----------------------------------------------
    def _resolve_machine(self, spec: Any) -> MachineDescription:
        if isinstance(spec, str):
            try:
                machine = get_machine(spec)
            except KeyError as exc:
                raise ServiceError(str(exc.args[0])) from None
        elif isinstance(spec, dict):
            try:
                machine = machine_from_dict(spec)
            except (MachineValidationError, ValueError) as exc:
                raise ServiceError(f"bad machine payload: {exc}") from None
        else:
            raise ServiceError(
                "machine must be a preset name or a machine description object"
            )
        if not machine.is_deterministic:
            raise ServiceError(
                f"machine {machine.name!r} is not deterministic; the "
                "service schedules single-pipeline-per-op machines only"
            )
        return machine

    def _resolve_options(self, overrides: Any) -> SearchOptions:
        if overrides is None:
            return self.options
        if not isinstance(overrides, dict):
            raise ServiceError("options must be an object")
        unknown = sorted(set(overrides) - set(_REQUEST_OPTIONS))
        if unknown:
            raise ServiceError(
                f"unknown options: {', '.join(unknown)} "
                f"(requests may set {', '.join(_REQUEST_OPTIONS)})"
            )
        import dataclasses

        try:
            return dataclasses.replace(self.options, **overrides)
        except (ValueError, TypeError) as exc:
            raise ServiceError(f"bad options: {exc}") from None

    def _parse_blocks(self, specs: Any) -> List[Tuple[str, Any]]:
        if not isinstance(specs, list) or not specs:
            raise ServiceError("blocks must be a non-empty list")
        out = []
        for i, spec in enumerate(specs):
            if not isinstance(spec, dict) or "tuples" not in spec:
                raise ServiceError(f"blocks[{i}] must be an object with 'tuples'")
            name = spec.get("name") or f"block{i}"
            try:
                block = parse_block(str(spec["tuples"]), name=str(name))
            except TupleSyntaxError as exc:
                raise ServiceError(f"blocks[{i}] ({name}): {exc}") from None
            out.append((str(name), block))
        return out

    def _seed_entry(self, index: int, name: str, dag, machine) -> Dict[str, Any]:
        """Run budget exhausted: publish the list seed, skip the search."""
        timing = compute_timing(dag, list_schedule(dag), machine)
        self.telemetry.count("resilience.run_budget_exhausted")
        self.telemetry.count(f"resilience.ladder.{STEP_LIST_SEED}")
        return {
            "index": index,
            "name": name,
            "order": list(timing.order),
            "etas": list(timing.etas),
            "issue_times": list(timing.issue_times),
            "total_nops": timing.total_nops,
            "seed_nops": timing.total_nops,
            "omega_calls": 0,
            "completed": False,
            "degraded": True,
            "ladder": STEP_LIST_SEED,
            "cache": BYPASS,
        }

    def schedule_batch(self, payload: Any) -> Dict[str, Any]:
        """Handle one ``POST /v1/schedule`` body (already JSON-decoded)."""
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        if payload.get("schema") != SCHEMA:
            raise ServiceError(
                f"unsupported schema {payload.get('schema')!r} (want {SCHEMA!r})"
            )
        machine = self._resolve_machine(payload.get("machine"))
        options = self._resolve_options(payload.get("options"))
        blocks = self._parse_blocks(payload.get("blocks"))
        if self.block_timeout is not None:
            import dataclasses

            options = dataclasses.replace(options, time_limit=self.block_timeout)

        entries: List[Dict[str, Any]] = []
        stats = {"hits": 0, "misses": 0, "bypass": 0}
        with self._lock:
            for index, (name, block) in enumerate(blocks):
                dag = DependenceDAG(block)
                if (
                    self.budget is not None
                    and self.budget.run_exhausted() is not None
                ):
                    entries.append(self._seed_entry(index, name, dag, machine))
                    stats["bypass"] += 1
                    continue
                block_options = (
                    self.budget.options_for_block(options)
                    if self.budget is not None
                    else options
                )
                out = ladder_schedule(
                    dag,
                    machine,
                    block_options,
                    telemetry=self.telemetry,
                    budget=self.budget,
                    cache=self.cache,
                )
                if self.budget is not None:
                    self.budget.charge(out.omega_calls)
                self.telemetry.count(f"resilience.ladder.{out.ladder}")
                status = out.cache_status if out.cache_status is not None else BYPASS
                if out.cache_status is None:
                    self.telemetry.count("service.cache.bypass")
                stats[
                    {"hit": "hits", "miss": "misses", "bypass": "bypass"}[status]
                ] += 1
                entries.append(
                    {
                        "index": index,
                        "name": name,
                        "order": list(out.timing.order),
                        "etas": list(out.timing.etas),
                        "issue_times": list(out.timing.issue_times),
                        "total_nops": out.final_nops,
                        "seed_nops": out.result.initial_nops,
                        "omega_calls": out.omega_calls,
                        "completed": out.result.completed and not out.degraded,
                        "degraded": out.degraded,
                        "ladder": out.ladder,
                        "cache": status,
                    }
                )
            self.telemetry.count("service.requests")
            self.telemetry.count("service.blocks", len(blocks))
        return {
            "schema": SCHEMA,
            "machine": machine.name,
            "entries": entries,
            "stats": stats,
        }

    def health(self) -> Dict[str, Any]:
        with self._lock:
            counters = {
                name: n
                for name, n in sorted(self.telemetry.counters.items())
                if name.startswith("service.")
            }
        return {
            "schema": SCHEMA,
            "ok": True,
            "cache": self.cache is not None,
            "store": None if self.cache is None else self.cache.path,
            "counters": counters,
        }


class _Handler(BaseHTTPRequestHandler):
    """HTTP plumbing around a :class:`SchedulingService`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    service: SchedulingService  # set by create_server
    quiet = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def address_string(self) -> str:
        # client_address is '' over AF_UNIX sockets.
        host = self.client_address[0] if self.client_address else "unix"
        return str(host) or "unix"

    def _reply(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802
        if self.path in ("/v1/health", "/health"):
            self._reply(200, self.service.health())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        if self.path not in ("/v1/schedule", "/schedule"):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._reply(400, {"error": "bad or oversized Content-Length"})
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"bad JSON body: {exc}"})
            return
        try:
            self._reply(200, self.service.schedule_batch(payload))
        except ServiceError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, {"error": f"internal error: {exc}"})


class _UnixHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to a unix-domain socket."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        # HTTPServer.server_bind unpacks server_address as (host, port);
        # over AF_UNIX it is a path string, so bind at the socketserver
        # layer and fill the name fields in by hand.
        try:
            os.unlink(self.server_address)  # type: ignore[arg-type]
        except OSError:
            pass
        import socketserver

        socketserver.TCPServer.server_bind(self)
        self.server_name = str(self.server_address)
        self.server_port = 0


def create_server(
    service: SchedulingService,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_path: Optional[str] = None,
) -> Tuple[ThreadingHTTPServer, str]:
    """Bind the daemon and return ``(server, url)``.

    ``port=0`` binds an ephemeral TCP port; ``unix_path`` switches to a
    unix-domain socket (the returned URL is ``unix://<path>``).  Call
    ``server.serve_forever()`` (or drive it from a thread in tests).
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    if unix_path is not None:
        server = _UnixHTTPServer(unix_path, handler)
        return server, f"unix://{unix_path}"
    server = ThreadingHTTPServer((host, port), handler)
    bound_host, bound_port = server.server_address[:2]
    return server, f"http://{bound_host}:{bound_port}"
