"""The batch scheduling daemon — ``repro serve``.

A long-lived front-end process that accepts batches of basic blocks plus
a machine description over HTTP (localhost TCP or a unix-domain socket)
and answers with schedules plus per-entry provenance.  The front-end
owns the listening socket and never searches: scheduling runs either
inline (``pool=None`` — tests, ``--workers 0``) or, in production mode,
on a supervised pre-fork worker pool (:mod:`repro.service.pool`) so a
native-engine segfault, a hung solve, or an OOM kill costs one worker
process — the request is retried on a fresh worker and, past the retry
cap, degraded to the block's deterministic list-schedule seed with
explicit provenance.  Never a silent 500.

Wire protocol (versioned ``repro-service/2``; see docs/file-formats.md —
``repro-service/1`` requests are still accepted, replies are always /2):

``POST /v1/schedule``::

    {
      "schema": "repro-service/2",
      "machine": "paper-simulation" | {machine_to_dict payload},
      "blocks": [{"name": "dot", "tuples": "1: Load #a\\n..."}, ...],
      "options": {"curtail": 50000, "engine": "fast", "max_live": null},
      "deadline": 2.5
    }

answers ``200`` with one entry per block (same order)::

    {
      "schema": "repro-service/2",
      "machine": "paper-simulation",
      "entries": [
        {"index": 0, "name": "dot", "order": [...], "etas": [...],
         "issue_times": [...], "total_nops": 2, "seed_nops": 4,
         "omega_calls": 37, "completed": true, "degraded": false,
         "ladder": "optimal-search", "cache": "hit",
         "shed": false, "worker_retries": 0},
        ...
      ],
      "stats": {"hits": 1, "misses": 0, "bypass": 0,
                "degraded": 0, "shed": 0}
    }

Error answers are always structured JSON: ``400`` for malformed
requests, ``413`` for oversized bodies, ``429`` + ``Retry-After`` when
admission control sheds the request (bounded queue full), ``503`` while
draining.  ``GET /v1/health/live`` is pure liveness; ``/v1/health/ready``
answers ``200``/``503`` from the readiness checks (workers alive, cache
store writable, engine probe, not draining); ``GET /v1/health`` reports
both plus the ``service.*`` counters.

Per-request ``deadline`` (seconds, optional) runs the batch under its
own :class:`repro.resilience.budget.BudgetManager`: each block's
``time_limit`` is clamped to the remaining request wall-clock and blocks
past the deadline publish their list seeds with ``shed: true`` instead
of searching.  Deadline-limited results bypass the cache (the outcome is
not a pure function of the problem).

Batches are deduplicated *through* the cache: the first occurrence of a
canonical form is scheduled and stored, every later occurrence — in the
same batch, a later batch, or a population run sharing the same disk
store — is a hit.  In pool mode only workers write through the
certificate-verified :class:`repro.service.cache.ScheduleCache`, so the
shared store stays consistent no matter which worker dies when.
"""

from __future__ import annotations

import json
import math
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..experiments.runner import ladder_schedule
from ..ir.dag import DependenceDAG
from ..ir.textual import TupleSyntaxError, parse_block
from ..machine.machine import MachineDescription, MachineValidationError
from ..machine.presets import get_machine
from ..machine.serialize import machine_from_dict
from ..resilience.budget import STEP_LIST_SEED, BudgetManager
from ..sched.core import resolve_engine
from ..sched.list_scheduler import list_schedule
from ..sched.nop_insertion import compute_timing
from ..sched.search import SearchOptions
from ..telemetry import Telemetry
from .cache import BYPASS, HIT, MISS, ScheduleCache
from .fingerprint import fingerprint_problem
from .pool import PoolJob, PoolSaturated, WorkerPool

__all__ = [
    "SCHEMA",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceDrainingError",
    "SchedulingService",
    "execute_block",
    "seed_entry",
    "create_server",
]

#: Version tag of the request/response payloads.
SCHEMA = "repro-service/2"

#: The PR 5 request schema — still accepted, answered in /2 form.
LEGACY_SCHEMA = "repro-service/1"

#: ``options`` keys a request may override.  Everything else is pinned
#: by the server's configuration — clients tune the *problem*, not the
#: daemon's resource policy.
_REQUEST_OPTIONS = ("curtail", "engine", "max_live")

#: Request size cap (16 MiB): a stray client cannot OOM the daemon.
MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceError(ValueError):
    """A malformed request (answered with HTTP 400)."""


class ServiceOverloadError(RuntimeError):
    """Admission control shed the request (answered with HTTP 429)."""

    def __init__(self, retry_after: float, queued: int):
        super().__init__(
            f"service overloaded ({queued} requests queued); "
            f"retry after {retry_after:g}s"
        )
        self.retry_after = retry_after
        self.queued = queued


class ServiceDrainingError(RuntimeError):
    """The daemon is draining for shutdown (answered with HTTP 503)."""

    def __init__(self) -> None:
        super().__init__("service is draining; not accepting new work")


def seed_entry(
    name: str,
    dag: DependenceDAG,
    machine: MachineDescription,
    telemetry: Telemetry,
    shed: bool = False,
) -> Dict[str, Any]:
    """The bottom-rung wire entry: the deterministic list-schedule seed.

    Published when searching is off the table — the run budget is spent
    before the block starts (``shed=True``), or the block burned through
    its worker retries / the drain deadline (``shed=False``).  Honest by
    construction: ``omega_calls=0``, ``degraded=True``.
    """
    timing = compute_timing(dag, list_schedule(dag), machine)
    telemetry.count(f"resilience.ladder.{STEP_LIST_SEED}")
    return {
        "name": name,
        "order": list(timing.order),
        "etas": list(timing.etas),
        "issue_times": list(timing.issue_times),
        "total_nops": timing.total_nops,
        "seed_nops": timing.total_nops,
        "omega_calls": 0,
        "completed": False,
        "degraded": True,
        "ladder": STEP_LIST_SEED,
        "cache": BYPASS,
        "shed": shed,
        "worker_retries": 0,
    }


def execute_block(
    name: str,
    dag: DependenceDAG,
    machine: MachineDescription,
    options: SearchOptions,
    telemetry: Telemetry,
    cache: Optional[ScheduleCache] = None,
    budget: Optional[BudgetManager] = None,
) -> Dict[str, Any]:
    """Schedule one block and build its wire entry (sans ``index``).

    The single per-block step shared by the inline path and the pool
    workers — what makes a pooled reply bit-identical to an inline one.
    ``budget`` (when given) clamps the block's options to the remaining
    request/run budget, enables the split-windows fallback, and is
    charged for the Ω spent; once exhausted, blocks publish shed seed
    entries without searching.
    """
    if budget is not None:
        if budget.run_exhausted() is not None:
            telemetry.count("resilience.run_budget_exhausted")
            return seed_entry(name, dag, machine, telemetry, shed=True)
        options = budget.options_for_block(options)
    out = ladder_schedule(
        dag, machine, options, telemetry=telemetry, budget=budget, cache=cache
    )
    if budget is not None:
        budget.charge(out.omega_calls)
    telemetry.count(f"resilience.ladder.{out.ladder}")
    status = out.cache_status if out.cache_status is not None else BYPASS
    if out.cache_status is None:
        telemetry.count("service.cache.bypass")
    return {
        "name": name,
        "order": list(out.timing.order),
        "etas": list(out.timing.etas),
        "issue_times": list(out.timing.issue_times),
        "total_nops": out.final_nops,
        "seed_nops": out.result.initial_nops,
        "omega_calls": out.omega_calls,
        "completed": out.result.completed and not out.degraded,
        "degraded": out.degraded,
        "ladder": out.ladder,
        "cache": status,
        "shed": False,
        "worker_retries": 0,
    }


class SchedulingService:
    """The protocol logic, separated from HTTP plumbing for testing.

    ``pool=None`` schedules inline under one lock (the PR 5 behaviour —
    tests and ``--workers 0``); with a started
    :class:`repro.service.pool.WorkerPool` the service becomes a pure
    front-end: it validates, deduplicates, submits jobs, and assembles
    replies, while workers own the searches and the cache writes.
    """

    def __init__(
        self,
        cache: Optional[ScheduleCache] = None,
        options: SearchOptions = SearchOptions(),
        budget: Optional[BudgetManager] = None,
        block_timeout: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
        pool: Optional[WorkerPool] = None,
        queue_limit: int = 32,
    ) -> None:
        self.cache = cache
        self.options = options
        self.budget = budget
        self.block_timeout = block_timeout
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.pool = pool
        self.queue_limit = queue_limit
        # One lock guards the mutable singletons (Telemetry, the daemon
        # BudgetManager) and, in inline mode, serializes the CPU-bound
        # searches — threads exist to keep health checks responsive.
        # The pool's dispatcher merges worker telemetry under the same
        # lock (attach_telemetry below).
        self._lock = threading.Lock()
        self._state = threading.Condition()
        self._pending = 0
        self._draining = False
        if budget is not None:
            budget.start()
        if pool is not None:
            pool.attach_telemetry(self.telemetry, self._lock)

    # -- admission control ---------------------------------------------
    def _admit(self) -> None:
        with self._state:
            if self._draining:
                raise ServiceDrainingError()
            if self._pending >= self.queue_limit:
                per_worker = self.pool.size if self.pool is not None else 1
                retry_after = max(1.0, math.ceil(self._pending / per_worker))
                self._count("service.shed_requests")
                raise ServiceOverloadError(retry_after, self._pending)
            self._pending += 1

    def _release(self) -> None:
        with self._state:
            self._pending -= 1
            self._state.notify_all()

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.telemetry.count(name, n)

    # -- request handling ----------------------------------------------
    def _resolve_machine(self, spec: Any) -> MachineDescription:
        if isinstance(spec, str):
            try:
                machine = get_machine(spec)
            except KeyError as exc:
                raise ServiceError(str(exc.args[0])) from None
        elif isinstance(spec, dict):
            try:
                machine = machine_from_dict(spec)
            except (MachineValidationError, ValueError) as exc:
                raise ServiceError(f"bad machine payload: {exc}") from None
        else:
            raise ServiceError(
                "machine must be a preset name or a machine description object"
            )
        if not machine.is_deterministic:
            raise ServiceError(
                f"machine {machine.name!r} is not deterministic; the "
                "service schedules single-pipeline-per-op machines only"
            )
        return machine

    def _resolve_options(self, overrides: Any) -> SearchOptions:
        if overrides is None:
            return self.options
        if not isinstance(overrides, dict):
            raise ServiceError("options must be an object")
        unknown = sorted(set(overrides) - set(_REQUEST_OPTIONS))
        if unknown:
            raise ServiceError(
                f"unknown options: {', '.join(unknown)} "
                f"(requests may set {', '.join(_REQUEST_OPTIONS)})"
            )
        import dataclasses

        try:
            return dataclasses.replace(self.options, **overrides)
        except (ValueError, TypeError) as exc:
            raise ServiceError(f"bad options: {exc}") from None

    def _resolve_deadline(self, deadline: Any) -> Optional[BudgetManager]:
        if deadline is None:
            return None
        if (
            isinstance(deadline, bool)
            or not isinstance(deadline, (int, float))
            or not math.isfinite(deadline)
            or deadline <= 0
        ):
            raise ServiceError("deadline must be a positive number of seconds")
        return BudgetManager(run_wall_clock=float(deadline)).start()

    def _parse_blocks(self, specs: Any) -> List[Tuple[str, str, Any]]:
        if not isinstance(specs, list) or not specs:
            raise ServiceError("blocks must be a non-empty list")
        out = []
        for i, spec in enumerate(specs):
            if not isinstance(spec, dict) or "tuples" not in spec:
                raise ServiceError(f"blocks[{i}] must be an object with 'tuples'")
            name = spec.get("name") or f"block{i}"
            text = str(spec["tuples"])
            try:
                block = parse_block(text, name=str(name))
            except TupleSyntaxError as exc:
                raise ServiceError(f"blocks[{i}] ({name}): {exc}") from None
            out.append((str(name), text, block))
        return out

    def schedule_batch(self, payload: Any) -> Dict[str, Any]:
        """Handle one ``POST /v1/schedule`` body (already JSON-decoded)."""
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        if payload.get("schema") not in (SCHEMA, LEGACY_SCHEMA):
            raise ServiceError(
                f"unsupported schema {payload.get('schema')!r} (want {SCHEMA!r})"
            )
        machine_spec = payload.get("machine")
        machine = self._resolve_machine(machine_spec)
        options = self._resolve_options(payload.get("options"))
        req_budget = self._resolve_deadline(payload.get("deadline"))
        blocks = self._parse_blocks(payload.get("blocks"))
        if self.block_timeout is not None:
            import dataclasses

            options = dataclasses.replace(options, time_limit=self.block_timeout)

        self._admit()
        try:
            if self.pool is not None:
                entries = self._schedule_pooled(
                    machine_spec, machine, options, blocks, req_budget
                )
            else:
                entries = self._schedule_inline(
                    machine, options, blocks, req_budget
                )
        finally:
            self._release()

        stats = {"hits": 0, "misses": 0, "bypass": 0, "degraded": 0, "shed": 0}
        for index, entry in enumerate(entries):
            entry["index"] = index
            stats[{HIT: "hits", MISS: "misses", BYPASS: "bypass"}[entry["cache"]]] += 1
            if entry["degraded"]:
                stats["degraded"] += 1
            if entry["shed"]:
                stats["shed"] += 1
        with self._lock:
            self.telemetry.count("service.requests")
            self.telemetry.count("service.blocks", len(blocks))
        return {
            "schema": SCHEMA,
            "machine": machine.name,
            "entries": entries,
            "stats": stats,
        }

    def _schedule_inline(
        self,
        machine: MachineDescription,
        options: SearchOptions,
        blocks: List[Tuple[str, str, Any]],
        req_budget: Optional[BudgetManager],
    ) -> List[Dict[str, Any]]:
        entries: List[Dict[str, Any]] = []
        with self._lock:
            for name, _text, block in blocks:
                dag = DependenceDAG(block)
                if (
                    self.budget is not None
                    and self.budget.run_exhausted() is not None
                ):
                    self.telemetry.count("resilience.run_budget_exhausted")
                    entries.append(
                        seed_entry(name, dag, machine, self.telemetry, shed=True)
                    )
                    continue
                if req_budget is not None:
                    block_options = (
                        self.budget.options_for_block(options)
                        if self.budget is not None
                        else options
                    )
                    entry = execute_block(
                        name,
                        dag,
                        machine,
                        block_options,
                        self.telemetry,
                        cache=self.cache,
                        budget=req_budget,
                    )
                    if self.budget is not None:
                        self.budget.charge(entry["omega_calls"])
                else:
                    entry = execute_block(
                        name,
                        dag,
                        machine,
                        options,
                        self.telemetry,
                        cache=self.cache,
                        budget=self.budget,
                    )
                entries.append(entry)
        return entries

    def _schedule_pooled(
        self,
        machine_spec: Any,
        machine: MachineDescription,
        options: SearchOptions,
        blocks: List[Tuple[str, str, Any]],
        req_budget: Optional[BudgetManager],
    ) -> List[Dict[str, Any]]:
        # slots[i] resolves blocks[i]: ("entry", dict) is already final,
        # ("job", PoolJob, dag) awaits a worker, ("dup", j) copies the
        # first occurrence of the same canonical form in this batch.
        slots: List[Tuple[Any, ...]] = []
        jobs: List[PoolJob] = []
        dedup: Dict[str, int] = {}
        for name, text, block in blocks:
            dag = DependenceDAG(block)
            if (
                self.budget is not None
                and self.budget.run_exhausted() is not None
            ):
                with self._lock:
                    self.telemetry.count("resilience.run_budget_exhausted")
                    entry = seed_entry(name, dag, machine, self.telemetry, shed=True)
                slots.append(("entry", entry))
                continue
            with self._lock:
                block_options = (
                    self.budget.options_for_block(options)
                    if self.budget is not None
                    else options
                )
            key: Optional[str] = None
            if (
                self.cache is not None
                and req_budget is None
                and block_options.time_limit is None
            ):
                try:
                    key = fingerprint_problem(dag, machine, block_options).key
                except Exception:  # noqa: BLE001 - dedup is best-effort
                    key = None
            if key is not None and key in dedup:
                slots.append(("dup", dedup[key]))
                continue
            job = PoolJob(
                name,
                text,
                machine_spec,
                block_options,
                req_budget,
                dag.idents,
                hang_timeout=self.pool.hang_timeout,
            )
            if key is not None:
                dedup[key] = len(slots)
            slots.append(("job", job, dag))
            jobs.append(job)

        try:
            self.pool.submit(jobs)
        except PoolSaturated as exc:
            self._count("service.shed_requests")
            raise ServiceOverloadError(
                exc.retry_after, self.pool.queued_jobs()
            ) from None
        for job in jobs:
            self.pool.wait(job)

        entries: List[Dict[str, Any]] = []
        omega_spent = 0
        for slot in slots:
            if slot[0] == "entry":
                entries.append(slot[1])
                continue
            if slot[0] == "dup":
                first = dict(entries[slot[1]])
                if first["cache"] == MISS and not first["degraded"]:
                    # The first occurrence solved and stored this form;
                    # a fresh lookup would now hit.
                    first["cache"] = HIT
                first["worker_retries"] = 0
                entries.append(first)
                continue
            _, job, dag = slot
            if job.entry is not None:
                entry = dict(job.entry)
                entry["worker_retries"] = job.attempts
                omega_spent += entry["omega_calls"]
            else:
                # Retries exhausted (or drain deadline): honest bottom
                # rung, with the failure trail in worker_retries.
                with self._lock:
                    self.telemetry.count("service.pool.degraded_entries")
                    entry = seed_entry(job.name, dag, machine, self.telemetry)
                entry["worker_retries"] = job.attempts
            entries.append(entry)
        if self.budget is not None and omega_spent:
            with self._lock:
                self.budget.charge(omega_spent)
        return entries

    # -- health & lifecycle --------------------------------------------
    def readiness(self) -> Tuple[bool, Dict[str, Any]]:
        """Readiness checks: can this daemon *usefully* serve right now?"""
        checks = {
            "accepting": not self._draining,
            "workers": self.pool is None or self.pool.alive_workers() > 0,
            "store": self._store_writable(),
            "engine": resolve_engine(self.options.engine) == self.options.engine,
        }
        ready = all(checks.values())
        return ready, {"schema": SCHEMA, "ok": ready, "checks": checks}

    def _store_writable(self) -> bool:
        if self.cache is None or self.cache.path is None:
            return True
        probe = os.path.join(self.cache.path, ".ready-probe")
        try:
            os.makedirs(self.cache.path, exist_ok=True)
            with open(probe, "w", encoding="utf-8") as fh:
                fh.write("ok")
            os.unlink(probe)
            return True
        except OSError:
            return False

    def liveness(self) -> Dict[str, Any]:
        return {"schema": SCHEMA, "ok": True}

    def health(self) -> Dict[str, Any]:
        ready, readiness = self.readiness()
        with self._lock:
            counters = {
                name: n
                for name, n in sorted(self.telemetry.counters.items())
                if name.startswith("service.")
            }
        return {
            "schema": SCHEMA,
            "ok": True,
            "ready": ready,
            "checks": readiness["checks"],
            "cache": self.cache is not None,
            "store": None if self.cache is None else self.cache.path,
            "workers": 0 if self.pool is None else self.pool.alive_workers(),
            "pending": self._pending,
            "counters": counters,
        }

    def begin_drain(self) -> None:
        """Stop admitting requests (new work answers 503)."""
        with self._state:
            self._draining = True

    def drain(self, timeout: float = 20.0) -> int:
        """Graceful shutdown: resolve in-flight work, stop the pool.

        Waits up to ``timeout`` seconds for pending requests to finish
        (supervision stays live, so worker crashes still fail over
        during the drain), then force-degrades whatever remains so every
        in-flight client gets an answer.  Returns the number of
        force-degraded jobs.
        """
        self.begin_drain()
        deadline = time.monotonic() + max(0.0, timeout)
        with self._state:
            while self._pending and time.monotonic() < deadline:
                self._state.wait(timeout=min(0.1, max(0.0, deadline - time.monotonic())))
        forced = 0
        if self.pool is not None:
            forced = self.pool.stop(
                drain_timeout=max(0.0, deadline - time.monotonic())
            )
            # Force-degraded jobs unblock their requests; give them a
            # moment to assemble replies so telemetry is complete.
            with self._state:
                while self._pending and time.monotonic() < deadline + 5.0:
                    self._state.wait(timeout=0.1)
        return forced


class _BodyError(Exception):
    """A request body problem with a definite HTTP status."""

    def __init__(self, code: int, message: str, close: bool = False):
        super().__init__(message)
        self.code = code
        self.close = close


class _Handler(BaseHTTPRequestHandler):
    """HTTP plumbing around a :class:`SchedulingService`.

    Every failure mode a client can provoke — bad framing, oversized or
    truncated bodies, disconnects mid-request — answers structured JSON
    (or silently drops a connection that is already gone).  The daemon
    log never sees a traceback for client behaviour.
    """

    server_version = "repro-serve/2"
    protocol_version = "HTTP/1.1"
    service: SchedulingService  # set by create_server
    quiet = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def address_string(self) -> str:
        # client_address is '' over AF_UNIX sockets.
        host = self.client_address[0] if self.client_address else "unix"
        return str(host) or "unix"

    def _reply(
        self,
        code: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            if close:
                self.send_header("Connection", "close")
                self.close_connection = True
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, socket.timeout, OSError):
            # The client is gone; nothing to answer and nothing to log
            # beyond the counter.
            self.service._count("service.http.disconnects")
            self.close_connection = True

    def do_GET(self) -> None:  # noqa: N802
        if self.path in ("/v1/health", "/health"):
            self._reply(200, self.service.health())
        elif self.path == "/v1/health/live":
            self._reply(200, self.service.liveness())
        elif self.path == "/v1/health/ready":
            ready, payload = self.service.readiness()
            self._reply(200 if ready else 503, payload)
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def _read_body(self) -> bytes:
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise _BodyError(400, "missing Content-Length header", close=True)
        try:
            length = int(raw_length)
        except ValueError:
            raise _BodyError(
                400, f"invalid Content-Length {raw_length!r}", close=True
            ) from None
        if length < 0:
            raise _BodyError(
                400, f"invalid Content-Length {raw_length!r}", close=True
            )
        if length > MAX_BODY_BYTES:
            # Answer without reading the body — the connection must
            # close, or the unread bytes would be parsed as a request.
            raise _BodyError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                close=True,
            )
        chunks: List[bytes] = []
        remaining = length
        try:
            while remaining:
                chunk = self.rfile.read(min(65536, remaining))
                if not chunk:
                    raise _BodyError(
                        400,
                        f"client disconnected mid-body "
                        f"({length - remaining}/{length} bytes received)",
                        close=True,
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
        except (socket.timeout, ConnectionError, OSError) as exc:
            raise _BodyError(
                400, f"failed reading request body: {exc}", close=True
            ) from None
        return b"".join(chunks)

    def do_POST(self) -> None:  # noqa: N802
        if self.path not in ("/v1/schedule", "/schedule"):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            body = self._read_body()
        except _BodyError as exc:
            self.service._count("service.http.bad_bodies")
            self._reply(exc.code, {"error": str(exc)}, close=exc.close)
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"bad JSON body: {exc}"})
            return
        try:
            self._reply(200, self.service.schedule_batch(payload))
        except ServiceError as exc:
            self._reply(400, {"error": str(exc)})
        except ServiceOverloadError as exc:
            self._reply(
                429,
                {
                    "error": str(exc),
                    "shed": True,
                    "retry_after": exc.retry_after,
                },
                headers={"Retry-After": str(int(math.ceil(exc.retry_after)))},
            )
        except ServiceDrainingError as exc:
            self._reply(503, {"error": str(exc), "draining": True})
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, {"error": f"internal error: {exc}"})


class _UnixHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to a unix-domain socket."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        # HTTPServer.server_bind unpacks server_address as (host, port);
        # over AF_UNIX it is a path string, so bind at the socketserver
        # layer and fill the name fields in by hand.
        try:
            os.unlink(self.server_address)  # type: ignore[arg-type]
        except OSError:
            pass
        import socketserver

        socketserver.TCPServer.server_bind(self)
        self.server_name = str(self.server_address)
        self.server_port = 0


def create_server(
    service: SchedulingService,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_path: Optional[str] = None,
) -> Tuple[ThreadingHTTPServer, str]:
    """Bind the daemon and return ``(server, url)``.

    ``port=0`` binds an ephemeral TCP port; ``unix_path`` switches to a
    unix-domain socket (the returned URL is ``unix://<path>``).  Call
    ``server.serve_forever()`` (or drive it from a thread in tests).
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    if unix_path is not None:
        server = _UnixHTTPServer(unix_path, handler)
        return server, f"unix://{unix_path}"
    server = ThreadingHTTPServer((host, port), handler)
    bound_host, bound_port = server.server_address[:2]
    return server, f"http://{bound_host}:{bound_port}"
