"""Supervised pre-fork worker pool for the scheduling daemon.

PR 8 moved the ctypes-bound native C engine into the daemon process: one
bad pointer in a compiled kernel would kill every in-flight request and
the cache-owning process with it.  This module restores crash isolation
by executing schedule requests in worker *processes* — the front-end
process owns the listening socket and never searches; workers own the
searches and are the only processes that write through the
certificate-verified :class:`repro.service.cache.ScheduleCache` (the
pickle form re-opens the same disk store per worker, so the shared
store stays consistent no matter which worker dies when).

The supervision policy is the PR 4 one
(:class:`repro.resilience.supervisor.SupervisorConfig` — retries,
capped exponential backoff, poison after ``max_retries``), applied per
request block instead of per population chunk:

* A worker that **dies** mid-job (segfault in the native kernel, OOM
  kill) is detected by its dead process object / broken pipe; the job
  is requeued and a replacement worker is spawned.
* A worker that **hangs** (livelock in a native solve that ignores the
  Python-level deadline) is detected when its job exceeds
  ``hang_timeout`` plus the job's own wall-clock limit, killed, and
  replaced.
* A reply that fails the structural
  :func:`repro.resilience.supervisor.validate_entry` check (simulated
  by the chaos plan's ``corrupt`` fault) is treated exactly like a
  crash: the worker is recycled and the job retried.
* A job that burns through its retries is **degraded**, not errored:
  the front-end publishes the block's deterministic list-schedule seed
  with explicit ``degraded`` provenance and ``worker_retries`` on the
  wire — never a silent 500.

Fault injection reuses :class:`repro.resilience.faults.FaultPlan`
verbatim with ``(job sequence number, attempt)`` in place of
``(chunk_id, attempt)``: crash/hang faults trigger in the worker after
the job is parsed ("mid-request"), corrupt faults mangle the reply so
the parent's validation must catch them.  ``max_faults_per_chunk``
bounds faults per job, so a chaos run always converges to the same
payloads a fault-free run produces — the service-level byte-identity
invariant.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from multiprocessing import Pipe, Process
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Tuple

from ..resilience.budget import BudgetManager
from ..resilience.faults import FaultPlan
from ..resilience.supervisor import SupervisorConfig, validate_entry
from ..sched.search import SearchOptions
from ..telemetry import Telemetry

__all__ = ["WorkerPool", "PoolJob", "PoolSaturated", "POOL_HANG_TIMEOUT"]

#: Default per-job no-progress timeout: generous — a legitimate curtailed
#: search at the default λ finishes far faster — but finite, so a hung
#: native solve is killed instead of wedging a request forever.  A job
#: with its own wall-clock ``time_limit`` gets that limit *on top*.
POOL_HANG_TIMEOUT = 60.0

#: Safety margin added to the caller-facing resolution guarantee (see
#: :meth:`WorkerPool.wait`): respawn + dispatch overhead per attempt.
_ATTEMPT_OVERHEAD = 10.0


class PoolSaturated(RuntimeError):
    """Admission control refused a job (bounded queue is full)."""

    def __init__(self, queued: int, retry_after: float):
        super().__init__(f"worker pool queue is full ({queued} jobs waiting)")
        self.retry_after = retry_after


class PoolJob:
    """One block's trip through the pool, owned by the front-end."""

    __slots__ = (
        "seq",
        "name",
        "tuples",
        "machine_spec",
        "options",
        "budget",
        "idents",
        "attempts",
        "eligible_at",
        "hang_after",
        "done",
        "entry",
        "failure",
    )

    def __init__(
        self,
        name: str,
        tuples: str,
        machine_spec: Any,
        options: SearchOptions,
        budget: Optional[BudgetManager],
        idents: Tuple[int, ...],
        hang_timeout: float,
    ):
        self.seq = -1  # assigned by submit()
        self.name = name
        self.tuples = tuples
        self.machine_spec = machine_spec
        self.options = options
        self.budget = budget
        self.idents = idents
        self.attempts = 0
        self.eligible_at = 0.0
        self.hang_after = hang_timeout + (options.time_limit or 0.0)
        self.done = threading.Event()
        self.entry: Optional[Dict[str, Any]] = None
        self.failure: Optional[str] = None


def _pool_worker(conn, worker_id: int, cache, fault_plan) -> None:
    """Worker process entry point: a job loop over one duplex pipe.

    Message protocol (all tuples, pickled over the pipe):

    * parent → worker ``("job", seq, attempt, name, tuples, machine_spec,
      options, budget)`` — schedule one block;
      ``("stop",)`` — exit the loop.
    * worker → parent ``("done", seq, attempt, entry, telemetry_dict)``
      on success — the only message that carries a result;
      ``("err", seq, attempt, message)`` for a worker-side exception
      (the parent retries the job exactly like a crash, but keeps the
      worker — the process itself is healthy).
    """
    # A worker forked after the daemon installed its SIGTERM drain
    # handler would inherit it and shrug off terminate() — reset to the
    # default so the supervisor can always kill us.  SIGINT is the
    # parent's to handle (a ^C must drain, not kill workers mid-write).
    import signal

    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    # Imports happen in the worker so a failure to import (torn install)
    # surfaces as a clean "err" retry path, and to dodge a parent-side
    # import cycle (server imports pool at module load).
    from ..ir.dag import DependenceDAG
    from ..ir.textual import parse_block
    from ..machine.presets import get_machine
    from ..machine.serialize import machine_from_dict
    from .server import execute_block

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _, seq, attempt, name, tuples, machine_spec, options, budget = msg
        fault = (
            fault_plan.decide(seq, attempt) if fault_plan is not None else None
        )
        telemetry = Telemetry()
        try:
            machine = (
                get_machine(machine_spec)
                if isinstance(machine_spec, str)
                else machine_from_dict(machine_spec)
            )
            dag = DependenceDAG(parse_block(tuples, name=name))
            if fault in ("crash", "hang"):
                # Mid-request: the job is parsed and owned by this
                # worker; recovery must requeue it, not lose it.
                fault_plan.inject(fault)
            entry = execute_block(
                name,
                dag,
                machine,
                options,
                telemetry,
                cache=cache,
                budget=budget,
            )
            if fault == "corrupt":
                entry = dict(entry, total_nops=entry["seed_nops"] + 7)
            conn.send(("done", seq, attempt, entry, telemetry.as_dict()))
        except Exception as exc:  # noqa: BLE001 - the parent retries
            try:
                conn.send(("err", seq, attempt, f"{type(exc).__name__}: {exc}"))
            except OSError:
                break


class _Worker:
    """Parent-side handle of one pool process."""

    __slots__ = ("process", "conn", "job", "dispatched_at")

    def __init__(self, process: Process, conn):
        self.process = process
        self.conn = conn
        self.job: Optional[PoolJob] = None
        self.dispatched_at = 0.0


class WorkerPool:
    """A fixed fleet of schedule workers behind a bounded job queue.

    The front-end submits :class:`PoolJob` batches (:meth:`submit`) and
    blocks on :meth:`wait`; a dispatcher thread owns every pipe and all
    supervision.  ``queue_limit`` bounds the *queued* (not yet running)
    jobs — admission control: a submit that would overflow raises
    :class:`PoolSaturated` so the HTTP layer can shed load with a
    structured 429 instead of accepting unbounded work.
    """

    def __init__(
        self,
        size: int,
        cache=None,
        config: Optional[SupervisorConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        telemetry: Optional[Telemetry] = None,
        telemetry_lock: Optional[threading.Lock] = None,
        queue_limit: int = 256,
        hang_timeout: float = POOL_HANG_TIMEOUT,
        on_event=None,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be at least 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        self.size = size
        self.cache = cache
        self.config = config if config is not None else SupervisorConfig()
        self.fault_plan = fault_plan
        self.telemetry = telemetry
        self.hang_timeout = hang_timeout
        self.queue_limit = queue_limit
        #: One-line observability callback (the CLI points it at stderr).
        self.on_event = on_event
        self._tlock = telemetry_lock if telemetry_lock is not None else threading.Lock()
        self._lock = threading.Lock()
        self._queue: deque[PoolJob] = deque()
        self._workers: Dict[int, _Worker] = {}
        self._reaping: List[Process] = []
        self._next_wid = 0
        self._next_seq = 0
        self._stopping = False
        self._thread: Optional[threading.Thread] = None

    def attach_telemetry(self, telemetry: Telemetry, lock: threading.Lock) -> None:
        """Point the pool at the service's registry and its guard lock.

        The dispatcher thread merges worker counter deltas; sharing the
        service's lock keeps those merges atomic with the front-end's
        own counting.
        """
        self.telemetry = telemetry
        self._tlock = lock

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "WorkerPool":
        """Spawn the worker fleet and the dispatcher thread.

        Raises ``OSError``/``RuntimeError`` when worker processes cannot
        be stood up (restricted sandbox) — the caller falls back to
        in-process scheduling.
        """
        with self._lock:
            for _ in range(self.size):
                self._spawn_locked()
            self._thread = threading.Thread(
                target=self._loop, name="pool-dispatcher", daemon=True
            )
            self._thread.start()
        return self

    def _spawn_locked(self) -> None:
        parent_conn, child_conn = Pipe(duplex=True)
        wid = self._next_wid
        self._next_wid += 1
        proc = Process(
            target=_pool_worker,
            args=(child_conn, wid, self.cache, self.fault_plan),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._workers[wid] = _Worker(proc, parent_conn)

    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers.values() if w.process.is_alive())

    def queued_jobs(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- submission ----------------------------------------------------
    def submit(self, jobs: List[PoolJob]) -> None:
        """Enqueue a request's jobs atomically, or shed the whole batch."""
        with self._lock:
            if self._stopping:
                raise PoolSaturated(len(self._queue), retry_after=1.0)
            if len(self._queue) + len(jobs) > self.queue_limit:
                # Retry-After estimate: queue depth over fleet size,
                # assuming ~1s per queued job; at least one second so
                # well-behaved clients actually back off.
                retry_after = max(
                    1.0, len(self._queue) / max(1, self.size)
                )
                raise PoolSaturated(len(self._queue), retry_after)
            for job in jobs:
                job.seq = self._next_seq
                self._next_seq += 1
                self._queue.append(job)

    def wait(self, job: PoolJob) -> None:
        """Block until ``job`` resolves (entry or degraded failure).

        Supervision guarantees resolution: every attempt either replies,
        dies (detected), hangs (killed at its hang deadline), or is
        drained at shutdown.  The wait cap below is a belt-and-braces
        bound derived from the retry policy — hitting it means a
        supervisor bug, and the job is degraded rather than hung.
        """
        attempts = self.config.max_retries + 1
        cap = (
            attempts * (job.hang_after + self.config.backoff_cap + _ATTEMPT_OVERHEAD)
            + self.queue_limit * job.hang_after
        )
        if not job.done.wait(timeout=cap):
            with self._lock:
                if not job.done.is_set():
                    job.failure = "supervisor lost the job"
                    job.done.set()
            self._count("service.pool.lost")

    # -- supervision loop ----------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        if self.telemetry is not None:
            with self._tlock:
                self.telemetry.count(name, n)

    def _event(self, line: str) -> None:
        if self.on_event is not None:
            try:
                self.on_event(line)
            except Exception:  # noqa: BLE001 - observability must not kill supervision
                pass

    def _loop(self) -> None:
        poll = self.config.poll_interval
        while True:
            with self._lock:
                if self._stopping and not self._queue and not any(
                    w.job is not None for w in self._workers.values()
                ):
                    break
                conns = [w.conn for w in self._workers.values()]
            if conns:
                mp_connection.wait(conns, timeout=poll)
            else:
                time.sleep(poll)
            now = time.monotonic()
            with self._lock:
                self._drain_replies_locked(now)
                self._check_workers_locked(now)
                self._dispatch_locked(now)
                self._reap_locked()

    def _resolve_locked(self, job: PoolJob, entry: Dict[str, Any], stats) -> None:
        job.entry = entry
        job.done.set()
        if self.telemetry is not None:
            with self._tlock:
                self.telemetry.merge(stats)

    def _fail_job_locked(self, job: PoolJob, kind: str, counter: str, now: float) -> None:
        job.attempts += 1
        self._count(counter)
        self._event(
            f"job {job.seq} ({job.name}) attempt {job.attempts}: {kind}"
        )
        if job.attempts > self.config.max_retries:
            job.failure = kind
            job.done.set()
            self._count("service.pool.degraded")
        else:
            job.eligible_at = now + self.config.backoff_delay(job.attempts)
            self._queue.append(job)
            self._count("service.pool.retries")

    def _recycle_locked(self, wid: int, terminate: bool) -> None:
        # Never block the dispatcher waiting on a dying process: while it
        # joins, healthy workers' replies go undrained and their jobs age
        # past the hang deadline — one real hang would cascade into fake
        # ones.  Terminate, park the corpse, reap opportunistically.
        worker = self._workers.pop(wid)
        try:
            worker.conn.close()
        except OSError:
            pass
        if terminate and worker.process.is_alive():
            worker.process.terminate()
        self._reaping.append(worker.process)
        if not self._stopping:
            self._spawn_locked()

    def _reap_locked(self) -> None:
        still_dying = []
        for proc in self._reaping:
            proc.join(timeout=0)
            if proc.is_alive():
                still_dying.append(proc)
        self._reaping = still_dying

    def _drain_replies_locked(self, now: float) -> None:
        for wid in list(self._workers):
            worker = self._workers[wid]
            try:
                while worker.conn.poll():
                    msg = worker.conn.recv()
                    job = worker.job
                    if job is None or msg[1] != job.seq:
                        # A reply for a job this worker no longer owns
                        # (it was already failed over); drop it.
                        continue
                    worker.job = None
                    if msg[0] == "done":
                        _, _, _, entry, stats = msg
                        reason = validate_entry(entry, job.name, job.idents)
                        if reason is None:
                            self._resolve_locked(job, entry, stats)
                        else:
                            # A worker producing garbage is as suspect
                            # as a crashed one: recycle it.
                            self._fail_job_locked(
                                job,
                                f"corrupt reply: {reason}",
                                "service.pool.corrupt_replies",
                                now,
                            )
                            self._recycle_locked(wid, terminate=True)
                            break
                    elif msg[0] == "err":
                        self._fail_job_locked(
                            job,
                            f"worker error: {msg[3]}",
                            "service.pool.worker_errors",
                            now,
                        )
            except (EOFError, OSError):
                job = worker.job
                worker.job = None
                if job is not None:
                    self._fail_job_locked(
                        job, "connection lost", "service.pool.crashes", now
                    )
                self._recycle_locked(wid, terminate=True)

    def _check_workers_locked(self, now: float) -> None:
        for wid in list(self._workers):
            worker = self._workers[wid]
            if not worker.process.is_alive():
                job = worker.job
                worker.job = None
                if job is not None:
                    self._fail_job_locked(
                        job,
                        f"worker died (exit {worker.process.exitcode})",
                        "service.pool.crashes",
                        now,
                    )
                self._recycle_locked(wid, terminate=False)
            elif (
                worker.job is not None
                and now - worker.dispatched_at > worker.job.hang_after
            ):
                job = worker.job
                worker.job = None
                self._fail_job_locked(
                    job,
                    f"no reply within {job.hang_after:g}s",
                    "service.pool.hangs",
                    now,
                )
                self._recycle_locked(wid, terminate=True)

    def _next_ready_locked(self, now: float) -> Optional[PoolJob]:
        for _ in range(len(self._queue)):
            job = self._queue.popleft()
            if job.eligible_at <= now:
                return job
            self._queue.append(job)
        return None

    def _dispatch_locked(self, now: float) -> None:
        for wid in list(self._workers):
            worker = self._workers[wid]
            if worker.job is not None or not worker.process.is_alive():
                continue
            job = self._next_ready_locked(now)
            if job is None:
                break
            try:
                worker.conn.send(
                    (
                        "job",
                        job.seq,
                        job.attempts,
                        job.name,
                        job.tuples,
                        job.machine_spec,
                        job.options,
                        job.budget,
                    )
                )
            except (OSError, ValueError):
                self._fail_job_locked(
                    job, "dispatch failed", "service.pool.crashes", now
                )
                self._recycle_locked(wid, terminate=True)
                continue
            worker.job = job
            worker.dispatched_at = now

    # -- shutdown ------------------------------------------------------
    def stop(self, drain_timeout: float = 20.0) -> int:
        """Drain and stop the pool; returns the number of forced jobs.

        Lets queued and running jobs resolve for up to ``drain_timeout``
        seconds (supervision stays active, so crashed workers still fail
        over during the drain), then force-degrades whatever is left and
        terminates the fleet.  Idempotent.
        """
        with self._lock:
            self._stopping = True
        deadline = time.monotonic() + max(0.0, drain_timeout)
        while time.monotonic() < deadline:
            with self._lock:
                busy = len(self._queue) + sum(
                    1 for w in self._workers.values() if w.job is not None
                )
            if not busy:
                break
            time.sleep(min(0.05, self.config.poll_interval))
        forced = 0
        with self._lock:
            leftovers = list(self._queue)
            self._queue.clear()
            for worker in self._workers.values():
                if worker.job is not None:
                    leftovers.append(worker.job)
                    worker.job = None
            for job in leftovers:
                if not job.done.is_set():
                    job.failure = "drain deadline"
                    job.done.set()
                    forced += 1
            if forced:
                self._count("service.pool.degraded", forced)
            for worker in self._workers.values():
                try:
                    worker.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
            for worker in self._workers.values():
                try:
                    worker.conn.close()
                except OSError:
                    pass
                if worker.process.is_alive():
                    worker.process.join(timeout=0.5)
                if worker.process.is_alive():
                    worker.process.terminate()
            # Second pass so the terminate()s overlap instead of paying
            # a serial join timeout per straggler.
            for worker in self._workers.values():
                worker.process.join(timeout=5.0)
            stragglers = [
                w.process for w in self._workers.values() if w.process.is_alive()
            ]
            self._workers.clear()
            for proc in self._reaping:
                proc.join(timeout=1.0)
                if proc.is_alive():
                    stragglers.append(proc)
            self._reaping.clear()
            # SIGKILL escalation: anything that shrugged off terminate()
            # must not survive to wedge multiprocessing's atexit join.
            for proc in stragglers:
                proc.kill()
            for proc in stragglers:
                proc.join(timeout=5.0)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return forced
