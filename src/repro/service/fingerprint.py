"""Canonical fingerprints for scheduling problems.

Two (block, machine, options) triples that are *isomorphic* — the same
problem up to a renaming of tuple reference numbers and pipeline
identifiers, and up to the order of commutative operands — admit exactly
the same searches: every candidate order, prune decision, Ω call and
incumbent of one maps to the other through the renaming.  This module
derives a stable content hash under which such problems collide, so a
result cache (:mod:`repro.service.cache`) can serve one's solved
``SearchResult`` for the other.

Canonical form
--------------
The key is built from the same dense lowering the fast engine uses
(:class:`repro.sched.core._Flat`):

* **Instructions** are named by position in ``dag.idents`` (program
  order).  The search itself is covariant under ident renaming: the
  list-schedule seed tie-breaks on positions/heights/descendant counts,
  and the fast engine keys every mask, memo entry and candidate sort on
  dense indices — so any two blocks with equal flat tables behave
  identically, Ω accounting and prune counts included.
* **Pipelines** are named by a *label-free* signature sort: each dense
  pipeline is summarized as ``(latency, enqueue_time, carry-in,
  sorted dense users)`` and pipelines are renumbered in that order.
  Sorting by raw pipeline ident would leak labels into the key (swapping
  which ident the loader and the multiplier carry changes nothing about
  the problem); the signature sort does not.  Pipelines with identical
  signatures are interchangeable, so ties are harmless.  The *whole*
  pipeline table participates — a pipeline no instruction uses still
  changes ``machine.max_latency`` and with it the dominance-memo window,
  hence the prune counts.
* **Operands** enter the payload only through the dependence edges
  (commutative operand order is already invisible there) — except under
  a register-pressure budget (``options.max_live``), where liveness
  additionally depends on which *values* each tuple consumes; the dense
  value-reference sets and produces-a-value flags are folded in exactly
  then.
* **Options** participate minus ``engine``: all four engines (fast,
  vector, native, reference) are bit-for-bit identical in every field
  the cache stores, so they share entries — a result solved under one
  engine is served to requests arriving under any other.

The fingerprint deliberately does **not** try to canonicalize away the
program order itself (graph canonization): blocks that differ by a
legal reordering are distinct cache entries.  That keeps key derivation
O(n log n) and collision-free by construction — the hypothesis suite in
``tests/test_fingerprint.py`` pins both directions (isomorphic problems
collide; any latency/enqueue/dependence mutation separates).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from ..sched.core import _Flat
from ..sched.list_scheduler import list_schedule, program_order
from ..sched.nop_insertion import (
    InitialConditions,
    PipelineAssignment,
    SigmaResolver,
)
from ..sched.search import ScheduleRequest, SearchOptions

__all__ = ["CanonicalForm", "fingerprint_problem", "canonical_payload"]

#: Version tag folded into every key: bump on any change to the payload
#: layout so stale stores turn into clean misses, never wrong hits.
CANON_VERSION = "repro-canon/1"

#: ``SearchOptions`` fields that shape the search outcome and therefore
#: the key.  ``engine`` is excluded on purpose: the fast, vector, native
#: and reference engines are bit-for-bit identical in every stored field.
_OPTION_FIELDS = (
    "curtail",
    "alpha_beta",
    "equivalence_prune",
    "lower_bound_prune",
    "dominance_prune",
    "heuristic_seeds",
    "seed_with_list_schedule",
    "cheapest_first",
    "max_memo_entries",
    "time_limit",
    "max_live",
)


@dataclass(frozen=True)
class CanonicalForm:
    """A scheduling problem reduced to its canonical dense tables.

    ``key`` is the cache key (sha256 hex digest over the canonical
    payload); ``idents`` maps dense instruction indices back to the
    *caller's* tuple reference numbers, which is how a cached dense
    result is translated into the caller's namespace on a hit.
    """

    key: str
    n: int
    idents: Tuple[int, ...]

    def __str__(self) -> str:
        return f"CanonicalForm({self.key[:12]}…, n={self.n})"


def _dense_seed(
    dag: DependenceDAG,
    options: SearchOptions,
    seed: Optional[Sequence[int]],
) -> Tuple[int, ...]:
    """The seed schedule in dense positions.

    Mirrors ``schedule_block``'s default: the list schedule (or program
    order with ``seed_with_list_schedule`` off).  The ``max_live``
    fallback to program order needs no special handling — it is a pure
    function of quantities already in the payload (the seed, the value
    references, the budget), so equal payloads take the same fallback.
    """
    if seed is None:
        seed = (
            list_schedule(dag)
            if options.seed_with_list_schedule
            else program_order(dag)
        )
    index_of = {ident: k for k, ident in enumerate(dag.idents)}
    return tuple(index_of[i] for i in seed)


def canonical_payload(
    dag: DependenceDAG,
    machine: MachineDescription,
    options: SearchOptions = SearchOptions(),
    assignment: Optional[PipelineAssignment] = None,
    seed: Optional[Sequence[int]] = None,
    initial_conditions: Optional[InitialConditions] = None,
) -> Dict[str, Any]:
    """The canonical (renaming-free) description of one search problem."""
    resolver = SigmaResolver(dag, machine, assignment)
    initial = (
        initial_conditions if initial_conditions is not None else InitialConditions()
    )
    flat = _Flat(dag, machine, resolver, initial)

    # Pipelines, renamed by label-free signature.  ``_Flat`` orders its
    # pipe arrays by sorted raw ident; recover the per-pipe latency in
    # that same order, then renumber.
    pipe_ids = sorted(p.ident for p in machine.pipelines)
    pipe_lat = [machine.pipeline(pid).latency for pid in pipe_ids]
    users: list[list[int]] = [[] for _ in range(flat.P)]
    for k, p in enumerate(flat.sig):
        if p >= 0:
            users[p].append(k)
    pipe_sig = [
        (
            pipe_lat[p],
            flat.pipe_enq[p],
            # None sorts nowhere; encode the idle carry-in as a sentinel
            # below any reachable last-issue time.
            flat.pipe_last[p] if flat.pipe_last[p] is not None else -(10**9),
            tuple(users[p]),
        )
        for p in range(flat.P)
    ]
    order = sorted(range(flat.P), key=lambda p: pipe_sig[p])
    canon_of = {p: c for c, p in enumerate(order)}

    rows = [
        (
            flat.lat[k],
            flat.enq[k],
            canon_of[flat.sig[k]] if flat.sig[k] >= 0 else -1,
            sorted(flat.preds[k]),
            flat.var_bound[k],
        )
        for k in range(flat.n)
    ]
    payload: Dict[str, Any] = {
        "version": CANON_VERSION,
        "n": flat.n,
        "rows": rows,
        "pipes": [pipe_sig[p] for p in order],
        "seed": _dense_seed(dag, options, seed),
        "options": {f: getattr(options, f) for f in _OPTION_FIELDS},
    }
    if options.max_live is not None:
        # Register pressure sees values, not just dependences: fold in
        # each tuple's consumed value set and whether it defines one.
        index_of = flat.index_of
        payload["liveness"] = [
            (
                sorted(index_of[r] for r in t.value_refs),
                bool(t.op.produces_value),
            )
            for t in dag.block
        ]
    return payload


def fingerprint_problem(
    dag,
    machine: Optional[MachineDescription] = None,
    options: SearchOptions = SearchOptions(),
    assignment: Optional[PipelineAssignment] = None,
    seed: Optional[Sequence[int]] = None,
    initial_conditions: Optional[InitialConditions] = None,
) -> CanonicalForm:
    """Hash a scheduling problem into its canonical cache key.

    Accepts either the legacy ``(dag, machine, ...)`` arguments or a
    complete :class:`~repro.sched.search.ScheduleRequest` as the sole
    argument (the unified request API) — the same problem produces the
    same key through either spelling.  Loop requests are rejected: the
    result cache stores straight-line ``SearchResult`` payloads only.
    """
    if isinstance(dag, ScheduleRequest):
        request = dag
        overridden = [
            name
            for name, value, default in (
                ("machine", machine, None),
                ("options", options, SearchOptions()),
                ("assignment", assignment, None),
                ("seed", seed, None),
                ("initial_conditions", initial_conditions, None),
            )
            if value != default
        ]
        if overridden:
            raise ValueError(
                "pass either a ScheduleRequest or the legacy keyword "
                f"arguments, not both (also given: {', '.join(overridden)})"
            )
        if request.is_loop:
            raise TypeError(
                "loop scheduling problems are not fingerprinted: the "
                "result cache stores straight-line SearchResult payloads"
            )
        machine = request.machine
        options = request.options
        assignment = request.assignment
        seed = request.seed
        initial_conditions = request.initial_conditions
        dag = request.dag
    if machine is None:
        raise TypeError(
            "machine is required unless a ScheduleRequest is passed"
        )
    payload = canonical_payload(
        dag, machine, options, assignment, seed, initial_conditions
    )
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    key = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return CanonicalForm(key=key, n=payload["n"], idents=dag.idents)
