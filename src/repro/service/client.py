"""Client for the batch scheduling daemon (``repro serve``).

Speaks the ``repro-service/2`` JSON protocol over localhost TCP or a
unix-domain socket::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8123")
    reply = client.schedule([block], "paper-simulation")
    reply["entries"][0]["cache"]        # "hit" | "miss" | "bypass"

Blocks may be :class:`repro.ir.BasicBlock` instances (formatted through
the linear tuple notation) or already-formatted tuple text; the machine
a preset name or a :class:`repro.machine.MachineDescription`.  Errors
the server answers with HTTP 4xx/5xx raise :class:`ServiceClientError`
carrying the server's message.

Transient failures retry: schedule requests are idempotent (the daemon
deduplicates by canonical fingerprint, so re-sending a batch can only
hit the cache), which makes it safe to retry connection refusal/reset,
timeouts, 429 shed answers (honouring ``Retry-After``) and 5xx with
bounded exponential backoff plus jitter — ``max_retries``/``backoff``
tune it, ``max_retries=0`` disables it.  Definite rejections (400/404/
413) never retry.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Union

from ..ir.block import BasicBlock
from ..ir.textual import format_block
from ..machine.machine import MachineDescription
from ..machine.serialize import machine_to_dict
from ..telemetry import Telemetry
from .server import SCHEMA

__all__ = ["ServiceClient", "ServiceClientError"]

#: Backoff ceiling (seconds) — mirrors the supervisor's cap.
_BACKOFF_CAP = 8.0


class ServiceClientError(RuntimeError):
    """The server refused or failed a request."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class _UnixHTTPConnection(http.client.HTTPConnection):
    """An HTTPConnection whose transport is a unix-domain socket."""

    def __init__(self, path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServiceClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(
        self,
        url: str,
        timeout: Optional[float] = 60.0,
        max_retries: int = 2,
        backoff: float = 0.25,
        telemetry: Optional[Telemetry] = None,
        rng: Optional[random.Random] = None,
    ):
        self.url = url
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None to block)")
        self.timeout = timeout
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff < 0:
            raise ValueError("backoff must be non-negative")
        self.max_retries = max_retries
        self.backoff = backoff
        self.telemetry = telemetry
        self._rng = rng if rng is not None else random.Random()
        if url.startswith("unix://"):
            self._unix_path: Optional[str] = url[len("unix://"):]
            self._netloc = None
        elif url.startswith("http://"):
            self._unix_path = None
            self._netloc = url[len("http://"):].rstrip("/")
        else:
            raise ValueError(
                f"unsupported service url {url!r} (want http://host:port "
                "or unix:///path/to.sock)"
            )

    def _connection(self) -> http.client.HTTPConnection:
        if self._unix_path is not None:
            return _UnixHTTPConnection(self._unix_path, timeout=self.timeout)
        return http.client.HTTPConnection(self._netloc, timeout=self.timeout)

    def _request_once(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        conn = self._connection()
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read().decode("utf-8", errors="replace")
            try:
                data = json.loads(raw)
            except json.JSONDecodeError:
                data = {"error": raw.strip() or "empty response"}
            if response.status != 200:
                retry_after: Optional[float] = None
                header = response.getheader("Retry-After")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
                raise ServiceClientError(
                    response.status, str(data.get("error", raw)), retry_after
                )
            return data
        finally:
            conn.close()

    def _retry_delay(self, attempt: int, retry_after: Optional[float]) -> float:
        """Capped exponential backoff with full jitter, floored by the
        server's ``Retry-After`` when it sent one."""
        delay = min(_BACKOFF_CAP, self.backoff * (2 ** (attempt - 1)))
        delay *= 0.5 + self._rng.random()  # jitter in [0.5x, 1.5x)
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        attempt = 0
        while True:
            retry_after: Optional[float] = None
            try:
                return self._request_once(method, path, payload)
            except ServiceClientError as exc:
                # 429 means the daemon shed us (come back later); 5xx
                # may be a worker mid-recycle.  Anything else is a
                # definite answer — retrying cannot change it.
                if exc.status != 429 and exc.status < 500:
                    raise
                if attempt >= self.max_retries:
                    raise
                retry_after = exc.retry_after
            except (http.client.HTTPException, OSError):
                # Connection refused/reset, timeout, torn response —
                # the daemon may be restarting a listener or draining
                # a worker; safe to resend an idempotent batch.
                if attempt >= self.max_retries:
                    raise
            attempt += 1
            if self.telemetry is not None:
                self.telemetry.count("service.client.retries")
            time.sleep(self._retry_delay(attempt, retry_after))

    # -- protocol ------------------------------------------------------
    def schedule(
        self,
        blocks: Sequence[Union[BasicBlock, str]],
        machine: Union[str, MachineDescription],
        options: Optional[Dict[str, Any]] = None,
        names: Optional[Sequence[str]] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Schedule a batch; returns the decoded ``repro-service/2`` reply.

        ``deadline`` (seconds) asks the daemon to bound the batch's
        wall clock: blocks past it publish shed seed entries.
        """
        specs: List[Dict[str, str]] = []
        for i, b in enumerate(blocks):
            if isinstance(b, BasicBlock):
                name = b.name
                text = format_block(b)
            else:
                name = f"block{i}"
                text = str(b)
            if names is not None:
                name = names[i]
            specs.append({"name": name, "tuples": text})
        payload: Dict[str, Any] = {
            "schema": SCHEMA,
            "machine": (
                machine
                if isinstance(machine, str)
                else machine_to_dict(machine)
            ),
            "blocks": specs,
        }
        if options is not None:
            payload["options"] = options
        if deadline is not None:
            payload["deadline"] = deadline
        return self._request("POST", "/v1/schedule", payload)

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def live(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health/live")

    def ready(self) -> Dict[str, Any]:
        """Raises :class:`ServiceClientError` (503) when not ready."""
        return self._request("GET", "/v1/health/ready")
