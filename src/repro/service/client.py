"""Client for the batch scheduling daemon (``repro serve``).

Speaks the ``repro-service/1`` JSON protocol over localhost TCP or a
unix-domain socket::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8123")
    reply = client.schedule([block], "paper-simulation")
    reply["entries"][0]["cache"]        # "hit" | "miss" | "bypass"

Blocks may be :class:`repro.ir.BasicBlock` instances (formatted through
the linear tuple notation) or already-formatted tuple text; the machine
a preset name or a :class:`repro.machine.MachineDescription`.  Errors
the server answers with HTTP 4xx/5xx raise :class:`ServiceClientError`
carrying the server's message.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, List, Optional, Sequence, Union

from ..ir.block import BasicBlock
from ..ir.textual import format_block
from ..machine.machine import MachineDescription
from ..machine.serialize import machine_to_dict
from .server import SCHEMA

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """The server refused or failed a request."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class _UnixHTTPConnection(http.client.HTTPConnection):
    """An HTTPConnection whose transport is a unix-domain socket."""

    def __init__(self, path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServiceClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(self, url: str, timeout: Optional[float] = 60.0):
        self.url = url
        self.timeout = timeout
        if url.startswith("unix://"):
            self._unix_path: Optional[str] = url[len("unix://"):]
            self._netloc = None
        elif url.startswith("http://"):
            self._unix_path = None
            self._netloc = url[len("http://"):].rstrip("/")
        else:
            raise ValueError(
                f"unsupported service url {url!r} (want http://host:port "
                "or unix:///path/to.sock)"
            )

    def _connection(self) -> http.client.HTTPConnection:
        if self._unix_path is not None:
            return _UnixHTTPConnection(self._unix_path, timeout=self.timeout)
        return http.client.HTTPConnection(self._netloc, timeout=self.timeout)

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        conn = self._connection()
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read().decode("utf-8", errors="replace")
            try:
                data = json.loads(raw)
            except json.JSONDecodeError:
                data = {"error": raw.strip() or "empty response"}
            if response.status != 200:
                raise ServiceClientError(
                    response.status, str(data.get("error", raw))
                )
            return data
        finally:
            conn.close()

    # -- protocol ------------------------------------------------------
    def schedule(
        self,
        blocks: Sequence[Union[BasicBlock, str]],
        machine: Union[str, MachineDescription],
        options: Optional[Dict[str, Any]] = None,
        names: Optional[Sequence[str]] = None,
    ) -> Dict[str, Any]:
        """Schedule a batch; returns the decoded ``repro-service/1`` reply."""
        specs: List[Dict[str, str]] = []
        for i, b in enumerate(blocks):
            if isinstance(b, BasicBlock):
                name = b.name
                text = format_block(b)
            else:
                name = f"block{i}"
                text = str(b)
            if names is not None:
                name = names[i]
            specs.append({"name": name, "tuples": text})
        payload: Dict[str, Any] = {
            "schema": SCHEMA,
            "machine": (
                machine
                if isinstance(machine, str)
                else machine_to_dict(machine)
            ),
            "blocks": specs,
        }
        if options is not None:
            payload["options"] = options
        return self._request("POST", "/v1/schedule", payload)

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")
