"""Two-tier canonical-form result cache for the branch-and-bound search.

``ScheduleCache.schedule`` is a drop-in for
:func:`repro.sched.search.schedule_block`: it fingerprints the problem
(:mod:`repro.service.fingerprint`), serves a previously solved
``SearchResult`` when the canonical form is known, and otherwise runs
the real search and memoizes the outcome.  Cached results are stored in
*dense positional* form and translated back through the caller's
``dag.idents`` on a hit — that is what lets a block solved under one
ident naming satisfy an isomorphic block under another.

Tiers
-----
* **Memory**: a bounded LRU (``memory_entries``) guarded by a lock, so
  a threaded server can share one cache instance.
* **Disk** (optional, ``path``): one JSON file per key under
  ``<path>/<key[:2]>/<key>.json``, written atomically and fsync'd via
  :mod:`repro.ioutil` — concurrent population workers can share a store
  directory without coordination (last writer wins with an identical
  payload), and a crash can never leave a torn entry.  Entries from an
  unknown schema version degrade to plain misses; *corrupt* entries
  (torn JSON, tampered keys, unreadable files) additionally move to
  ``<store>/quarantine/<key>.json`` with a ``.reason`` sidecar and count
  ``service.cache.quarantined``, so corruption is observable instead of
  an invisible miss.

Safety
------
* Results are **certificate-verified on insert** through
  :mod:`repro.verify.certificate` (an independent implementation); a
  search result that fails its certificate raises
  :class:`CacheIntegrityError` instead of poisoning the store.
* Lookups are **bypassed** (counted, not served) whenever the problem is
  not cache-safe: a wall-clock ``time_limit`` makes the outcome depend
  on machine load, not just the problem.  For the same reason a
  ``timed_out`` result is never stored.  Curtailed-but-not-timed-out
  results are deterministic and cached like any other.
* The pickle form drops the memory tier and its lock: a cache shipped
  to a population worker process re-opens the same disk store with a
  cold LRU.

Telemetry: every lookup counts ``service.cache.hits`` /
``service.cache.misses`` / ``service.cache.bypass`` on the registry
passed to :meth:`ScheduleCache.schedule`.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Sequence, Tuple

from ..ioutil import atomic_write_json
from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from ..sched.nop_insertion import (
    InitialConditions,
    PipelineAssignment,
    ScheduleTiming,
)
from ..sched.search import SearchOptions, SearchResult, schedule_block
from ..telemetry import PRUNE_KINDS, Telemetry
from .fingerprint import CanonicalForm, fingerprint_problem

__all__ = ["ScheduleCache", "CacheIntegrityError", "STORE_SCHEMA"]

#: Version tag of one on-disk entry.  Entries with any other tag are
#: treated as misses (forward/backward compatible by re-solving).
STORE_SCHEMA = "repro-cache/1"

#: Lookup outcomes (the provenance the server reports per entry).
HIT, MISS, BYPASS = "hit", "miss", "bypass"


class CacheIntegrityError(AssertionError):
    """A result failed its independent certificate check on insert."""


def _timing_payload(timing: ScheduleTiming, index_of: Dict[int, int]) -> Dict[str, Any]:
    return {
        "order": [index_of[i] for i in timing.order],
        "etas": list(timing.etas),
        "issue_times": list(timing.issue_times),
    }


def _timing_from_payload(data: Dict[str, Any], idents: Tuple[int, ...]) -> ScheduleTiming:
    return ScheduleTiming(
        order=tuple(idents[k] for k in data["order"]),
        etas=tuple(data["etas"]),
        issue_times=tuple(data["issue_times"]),
    )


class ScheduleCache:
    """Memoized ``schedule_block`` over a canonical-form key."""

    def __init__(
        self,
        path: Optional[str] = None,
        memory_entries: int = 4096,
        verify_on_insert: bool = True,
    ) -> None:
        if memory_entries < 1:
            raise ValueError("memory_entries must be positive")
        self.path = os.fspath(path) if path is not None else None
        self.memory_entries = memory_entries
        self.verify_on_insert = verify_on_insert
        self._mem: OrderedDict[str, Dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()

    # -- pickling (population workers) ---------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "memory_entries": self.memory_entries,
            "verify_on_insert": self.verify_on_insert,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self.memory_entries = state["memory_entries"]
        self.verify_on_insert = state["verify_on_insert"]
        self._mem = OrderedDict()
        self._lock = threading.Lock()

    # -- tiers ---------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        assert self.path is not None
        return os.path.join(self.path, key[:2], f"{key}.json")

    def _mem_get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            entry = self._mem.get(key)
            if entry is not None:
                self._mem.move_to_end(key)
            return entry

    def _mem_put(self, key: str, entry: Dict[str, Any]) -> None:
        with self._lock:
            self._mem[key] = entry
            self._mem.move_to_end(key)
            while len(self._mem) > self.memory_entries:
                self._mem.popitem(last=False)

    def _disk_get(
        self, key: str, telemetry: Optional[Telemetry] = None
    ) -> Optional[Dict[str, Any]]:
        if self.path is None:
            return None
        try:
            with open(self._entry_path(key), "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._quarantine(key, f"unreadable: {exc}", telemetry)
            return None
        except ValueError as exc:
            self._quarantine(key, f"torn or non-JSON payload: {exc}", telemetry)
            return None
        if not isinstance(entry, dict):
            self._quarantine(
                key, f"payload is {type(entry).__name__}, not an object", telemetry
            )
            return None
        if entry.get("schema") != STORE_SCHEMA:
            # An unknown schema is a version skew, not corruption: leave
            # the file for the tooling that understands it and re-solve.
            return None
        if entry.get("key") != key:
            self._quarantine(
                key, f"key mismatch: file names {entry.get('key')!r}", telemetry
            )
            return None
        return entry

    def _quarantine(
        self, key: str, reason: str, telemetry: Optional[Telemetry] = None
    ) -> None:
        """Move a corrupt disk entry aside so corruption is observable.

        The entry lands in ``<store>/quarantine/<key>.json`` next to a
        ``.reason`` sidecar instead of silently degrading to a miss
        forever; the next solve rewrites the canonical slot.  Best
        effort — a store too broken to rename in is still just a miss.
        """
        assert self.path is not None
        dst = os.path.join(self.path, "quarantine", f"{key}.json")
        try:
            os.makedirs(os.path.dirname(dst), exist_ok=True)
            os.replace(self._entry_path(key), dst)
            with open(dst + ".reason", "w", encoding="utf-8") as fh:
                fh.write(reason + "\n")
        except OSError:
            pass
        if telemetry is not None:
            telemetry.count("service.cache.quarantined")
        print(
            f"repro cache: quarantined corrupt entry {key[:12]}... ({reason})",
            file=sys.stderr,
        )

    def _disk_put(self, key: str, entry: Dict[str, Any]) -> None:
        if self.path is None:
            return
        target = self._entry_path(key)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        atomic_write_json(target, entry, indent=None, sort_keys=True)

    def _lookup(
        self, key: str, telemetry: Optional[Telemetry] = None
    ) -> Optional[Dict[str, Any]]:
        entry = self._mem_get(key)
        if entry is not None:
            return entry
        entry = self._disk_get(key, telemetry=telemetry)
        if entry is not None:
            self._mem_put(key, entry)
        return entry

    # -- (de)hydration -------------------------------------------------
    def _entry_from_result(
        self, form: CanonicalForm, result: SearchResult
    ) -> Dict[str, Any]:
        index_of = {ident: k for k, ident in enumerate(form.idents)}
        return {
            "schema": STORE_SCHEMA,
            "key": form.key,
            "n": form.n,
            "best": _timing_payload(result.best, index_of),
            "initial": _timing_payload(result.initial, index_of),
            "omega_calls": result.omega_calls,
            "completed": result.completed,
            "improvements": result.improvements,
            "proved_by_bound": result.proved_by_bound,
            "memo_evicted": result.memo_evicted,
            "prune_counts": {
                kind: int(result.prune_counts.get(kind, 0))
                for kind in PRUNE_KINDS
            },
        }

    def _result_from_entry(
        self, entry: Dict[str, Any], idents: Tuple[int, ...], elapsed: float
    ) -> SearchResult:
        return SearchResult(
            best=_timing_from_payload(entry["best"], idents),
            initial=_timing_from_payload(entry["initial"], idents),
            omega_calls=entry["omega_calls"],
            completed=entry["completed"],
            elapsed_seconds=elapsed,
            improvements=entry["improvements"],
            proved_by_bound=entry["proved_by_bound"],
            timed_out=False,
            memo_evicted=entry["memo_evicted"],
            prune_counts=dict(entry["prune_counts"]),
        )

    # -- verification ---------------------------------------------------
    def _certify(
        self,
        dag: DependenceDAG,
        machine: MachineDescription,
        result: SearchResult,
        assignment: Optional[PipelineAssignment],
        initial_conditions: Optional[InitialConditions],
    ) -> None:
        from ..sched.multi import first_pipeline_assignment
        from ..verify.certificate import check_schedule

        if assignment is None:
            assignment = first_pipeline_assignment(dag, machine)
        initial = initial_conditions or InitialConditions()
        for label, timing in (("best", result.best), ("initial", result.initial)):
            cert = check_schedule(
                dag.block,
                machine,
                timing.order,
                timing.etas,
                assignment=assignment,
                pipe_free=initial.pipe_free,
                variable_ready=initial.variable_ready,
            )
            if not cert.ok or cert.required_nops != timing.total_nops:
                raise CacheIntegrityError(
                    f"refusing to cache {label} schedule of block "
                    f"{dag.block.name!r} on {machine.name}: {cert.summary()}"
                )

    # -- the public surface --------------------------------------------
    def schedule(
        self,
        dag: DependenceDAG,
        machine: MachineDescription,
        options: SearchOptions = SearchOptions(),
        assignment: Optional[PipelineAssignment] = None,
        seed: Optional[Sequence[int]] = None,
        initial_conditions: Optional[InitialConditions] = None,
        telemetry: Optional[Telemetry] = None,
        engine: Optional[str] = None,
    ) -> SearchResult:
        """Cached :func:`repro.sched.search.schedule_block`."""
        return self.schedule_with_status(
            dag,
            machine,
            options,
            assignment=assignment,
            seed=seed,
            initial_conditions=initial_conditions,
            telemetry=telemetry,
            engine=engine,
        )[0]

    def schedule_with_status(
        self,
        dag: DependenceDAG,
        machine: MachineDescription,
        options: SearchOptions = SearchOptions(),
        assignment: Optional[PipelineAssignment] = None,
        seed: Optional[Sequence[int]] = None,
        initial_conditions: Optional[InitialConditions] = None,
        telemetry: Optional[Telemetry] = None,
        engine: Optional[str] = None,
    ) -> Tuple[SearchResult, str]:
        """Like :meth:`schedule`, plus the lookup provenance.

        Returns ``(result, status)`` with ``status`` one of ``"hit"``,
        ``"miss"`` or ``"bypass"``.
        """
        if options.time_limit is not None:
            # Wall-clock-limited searches are not functions of the
            # problem alone; never serve or store them.
            if telemetry is not None:
                telemetry.count("service.cache.bypass")
            result = schedule_block(
                dag,
                machine,
                options,
                assignment=assignment,
                seed=seed,
                initial_conditions=initial_conditions,
                telemetry=telemetry,
                engine=engine,
            )
            return result, BYPASS

        start = time.perf_counter()
        form = fingerprint_problem(
            dag, machine, options, assignment, seed, initial_conditions
        )
        entry = self._lookup(form.key, telemetry=telemetry)
        if entry is not None and entry.get("n") == form.n:
            result = self._result_from_entry(
                entry, form.idents, time.perf_counter() - start
            )
            if telemetry is not None:
                telemetry.count("service.cache.hits")
                # Replayed searches keep the search/prune aggregates
                # consistent with what a cold run would report.
                telemetry.record_search(result)
            return result, HIT

        result = schedule_block(
            dag,
            machine,
            options,
            assignment=assignment,
            seed=seed,
            initial_conditions=initial_conditions,
            telemetry=telemetry,
            engine=engine,
        )
        if telemetry is not None:
            telemetry.count("service.cache.misses")
        if not result.timed_out:
            if self.verify_on_insert:
                self._certify(dag, machine, result, assignment, initial_conditions)
            entry = self._entry_from_result(form, result)
            self._mem_put(form.key, entry)
            self._disk_put(form.key, entry)
        return result, MISS
