"""repro.api — the supported programmatic surface, in one flat module.

Downstream code should import from here rather than reaching into
submodules; names in :data:`__all__` are the compatibility contract
(pinned by ``tests/test_api_surface.py``), everything else in the
package is internal and may move without notice.

The groups:

- **Compiling** — :func:`compile_source` / :func:`compile_program`
  drive the whole Figure-2 back end; :func:`compile_block` schedules an
  already-built tuple block; :func:`compile_loop` software-pipelines a
  bounded source loop into a modulo kernel (:class:`LoopCompilation`).
- **IR** — the tuple form (:class:`IRTuple`, :class:`BasicBlock`,
  :class:`DependenceDAG`) and the paper's linear notation
  (:func:`parse_block` / :func:`format_block`).
- **Machines** — :class:`MachineDescription` plus the paper's preset
  tables (:func:`get_machine`, :data:`PRESETS`) and the on-disk format
  (:func:`load_machine` / :func:`save_machine`,
  :func:`machine_to_dict` / :func:`machine_from_dict`).
- **Scheduling** — :func:`schedule_block` (the branch-and-bound search
  behind :class:`SearchOptions` / :class:`SearchResult`),
  :func:`list_schedule`, :func:`compute_timing` (the Ω procedure), and
  :func:`schedule_block_ilp` (the time-indexed ILP witness behind
  :class:`IlpOptions` / :class:`IlpSearchResult`).  A problem plus its
  configuration can travel as one :class:`ScheduleRequest`, accepted by
  :func:`schedule_block`, :func:`schedule_loop` and
  :func:`fingerprint_problem` alike; every result type satisfies the
  :class:`ScheduleOutcome` protocol (``schedule`` / ``objective`` /
  ``provenance`` / ``elapsed_seconds`` / ``completed``).
- **Loop scheduling** — :func:`schedule_loop` (modulo software
  pipelining over :class:`LoopBlock`, producing
  :class:`ModuloScheduleResult`) and :func:`min_initiation_interval`
  (the MII decomposition); :func:`lower_loop` builds the
  :class:`LoopBlock` from a parsed ``for`` statement.
- **Verification** — :func:`check_schedule`, the independent
  certificate checker, and :func:`check_steady_state`, its
  cross-iteration counterpart for modulo kernels.
- **Service** — the canonical-form result cache
  (:class:`ScheduleCache`, :func:`fingerprint_problem`) and the batch
  scheduling daemon's client (:class:`ServiceClient`); see
  :mod:`repro.service`.
- **Telemetry** — :class:`Telemetry`, the counters/phase-timer sink
  every entry point threads through.

Quick start::

    from repro.api import compile_source, get_machine
    result = compile_source("b = 15; a = b * a;", get_machine("paper-simulation"))
    print(result.assembly)

Caching searches::

    from repro.api import ScheduleCache, SearchOptions, get_machine, parse_block
    from repro.ir import DependenceDAG

    cache = ScheduleCache(path="/var/cache/repro-schedules")
    block = parse_block("1: Load #a\\n2: Mul 1, 1\\n3: Store #a, 2")
    result = cache.schedule(DependenceDAG(block), get_machine("paper-simulation"),
                            SearchOptions())
"""

from __future__ import annotations

from . import __version__
from .driver import (
    CompilationResult,
    LoopCompilation,
    ProgramCompilation,
    VerificationError,
    compile_block,
    compile_loop,
    compile_program,
    compile_source,
    verify_compilation,
    verify_program,
)
from .frontend import lower_loop
from .ilp import IlpOptions, IlpSearchResult, schedule_block_ilp
from .ir import (
    BasicBlock,
    DependenceDAG,
    IRTuple,
    LoopBlock,
    Opcode,
    format_block,
    parse_block,
    run_block,
)
from .machine import (
    MachineDescription,
    PipelineDesc,
    get_machine,
    paper_example_machine,
    paper_simulation_machine,
)
from .machine.presets import PRESETS
from .machine.serialize import (
    load_machine,
    machine_from_dict,
    machine_to_dict,
    save_machine,
)
from .sched import (
    InitialConditions,
    ModuloScheduleResult,
    ScheduleOutcome,
    ScheduleRequest,
    SearchOptions,
    SearchResult,
    compute_timing,
    list_schedule,
    min_initiation_interval,
    schedule_block,
    schedule_loop,
)
from .service import (
    CacheIntegrityError,
    CanonicalForm,
    ScheduleCache,
    SchedulingService,
    ServiceClient,
    ServiceClientError,
    ServiceError,
    create_server,
    fingerprint_problem,
)
from .telemetry import Telemetry
from .verify.certificate import check_schedule, check_steady_state

__all__ = [
    # compiling
    "CompilationResult",
    "LoopCompilation",
    "ProgramCompilation",
    "VerificationError",
    "compile_block",
    "compile_loop",
    "compile_program",
    "compile_source",
    "verify_compilation",
    "verify_program",
    # IR
    "BasicBlock",
    "DependenceDAG",
    "IRTuple",
    "LoopBlock",
    "Opcode",
    "format_block",
    "lower_loop",
    "parse_block",
    "run_block",
    # machines
    "MachineDescription",
    "PipelineDesc",
    "PRESETS",
    "get_machine",
    "paper_example_machine",
    "paper_simulation_machine",
    "load_machine",
    "save_machine",
    "machine_from_dict",
    "machine_to_dict",
    # scheduling
    "IlpOptions",
    "IlpSearchResult",
    "InitialConditions",
    "ModuloScheduleResult",
    "ScheduleOutcome",
    "ScheduleRequest",
    "SearchOptions",
    "SearchResult",
    "compute_timing",
    "list_schedule",
    "min_initiation_interval",
    "schedule_block",
    "schedule_block_ilp",
    "schedule_loop",
    # verification
    "check_schedule",
    "check_steady_state",
    # service
    "CacheIntegrityError",
    "CanonicalForm",
    "ScheduleCache",
    "SchedulingService",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "create_server",
    "fingerprint_problem",
    # telemetry
    "Telemetry",
    "__version__",
]
