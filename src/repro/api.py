"""repro.api — the supported programmatic surface, in one flat module.

Downstream code should import from here rather than reaching into
submodules; names in :data:`__all__` are the compatibility contract
(pinned by ``tests/test_api_surface.py``), everything else in the
package is internal and may move without notice.

The groups:

- **Compiling** — :func:`compile_source` / :func:`compile_program`
  drive the whole Figure-2 back end; :func:`compile_block` schedules an
  already-built tuple block.
- **IR** — the tuple form (:class:`IRTuple`, :class:`BasicBlock`,
  :class:`DependenceDAG`) and the paper's linear notation
  (:func:`parse_block` / :func:`format_block`).
- **Machines** — :class:`MachineDescription` plus the paper's preset
  tables (:func:`get_machine`, :data:`PRESETS`) and the on-disk format
  (:func:`load_machine` / :func:`save_machine`,
  :func:`machine_to_dict` / :func:`machine_from_dict`).
- **Scheduling** — :func:`schedule_block` (the branch-and-bound search
  behind :class:`SearchOptions` / :class:`SearchResult`),
  :func:`list_schedule`, :func:`compute_timing` (the Ω procedure), and
  :func:`schedule_block_ilp` (the time-indexed ILP witness behind
  :class:`IlpOptions` / :class:`IlpSearchResult`).
- **Verification** — :func:`check_schedule`, the independent
  certificate checker.
- **Service** — the canonical-form result cache
  (:class:`ScheduleCache`, :func:`fingerprint_problem`) and the batch
  scheduling daemon's client (:class:`ServiceClient`); see
  :mod:`repro.service`.
- **Telemetry** — :class:`Telemetry`, the counters/phase-timer sink
  every entry point threads through.

Quick start::

    from repro.api import compile_source, get_machine
    result = compile_source("b = 15; a = b * a;", get_machine("paper-simulation"))
    print(result.assembly)

Caching searches::

    from repro.api import ScheduleCache, SearchOptions, get_machine, parse_block
    from repro.ir import DependenceDAG

    cache = ScheduleCache(path="/var/cache/repro-schedules")
    block = parse_block("1: Load #a\\n2: Mul 1, 1\\n3: Store #a, 2")
    result = cache.schedule(DependenceDAG(block), get_machine("paper-simulation"),
                            SearchOptions())
"""

from __future__ import annotations

from . import __version__
from .driver import (
    CompilationResult,
    ProgramCompilation,
    VerificationError,
    compile_block,
    compile_program,
    compile_source,
    verify_compilation,
    verify_program,
)
from .ilp import IlpOptions, IlpSearchResult, schedule_block_ilp
from .ir import (
    BasicBlock,
    DependenceDAG,
    IRTuple,
    Opcode,
    format_block,
    parse_block,
    run_block,
)
from .machine import (
    MachineDescription,
    PipelineDesc,
    get_machine,
    paper_example_machine,
    paper_simulation_machine,
)
from .machine.presets import PRESETS
from .machine.serialize import (
    load_machine,
    machine_from_dict,
    machine_to_dict,
    save_machine,
)
from .sched import (
    InitialConditions,
    SearchOptions,
    SearchResult,
    compute_timing,
    list_schedule,
    schedule_block,
)
from .service import (
    CacheIntegrityError,
    CanonicalForm,
    ScheduleCache,
    SchedulingService,
    ServiceClient,
    ServiceClientError,
    ServiceError,
    create_server,
    fingerprint_problem,
)
from .telemetry import Telemetry
from .verify.certificate import check_schedule

__all__ = [
    # compiling
    "CompilationResult",
    "ProgramCompilation",
    "VerificationError",
    "compile_block",
    "compile_program",
    "compile_source",
    "verify_compilation",
    "verify_program",
    # IR
    "BasicBlock",
    "DependenceDAG",
    "IRTuple",
    "Opcode",
    "format_block",
    "parse_block",
    "run_block",
    # machines
    "MachineDescription",
    "PipelineDesc",
    "PRESETS",
    "get_machine",
    "paper_example_machine",
    "paper_simulation_machine",
    "load_machine",
    "save_machine",
    "machine_from_dict",
    "machine_to_dict",
    # scheduling
    "IlpOptions",
    "IlpSearchResult",
    "InitialConditions",
    "SearchOptions",
    "SearchResult",
    "compute_timing",
    "list_schedule",
    "schedule_block",
    "schedule_block_ilp",
    # verification
    "check_schedule",
    # service
    "CacheIntegrityError",
    "CanonicalForm",
    "ScheduleCache",
    "SchedulingService",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "create_server",
    "fingerprint_problem",
    # telemetry
    "Telemetry",
    "__version__",
]
