"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot build a PEP 660 editable wheel; this shim lets pip fall back to the
``setup.py develop`` editable path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
